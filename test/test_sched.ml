(* Unit tests for the scheduling engine and the heuristics, including the
   paper's worked examples. *)

open Sb_machine

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)

let wct = Sb_sched.Schedule.weighted_completion_time

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_basic () =
  let sb = Fixtures.chain 3 in
  let st = Sb_sched.Scheduler_core.create Config.gp2 sb in
  check_bool "op 0 ready" true (Sb_sched.Scheduler_core.is_ready st 0);
  check_bool "op 1 not ready" false (Sb_sched.Scheduler_core.is_ready st 1);
  Sb_sched.Scheduler_core.place st 0;
  check_bool "op 1 still not ready (latency)" false
    (Sb_sched.Scheduler_core.is_ready st 1);
  Sb_sched.Scheduler_core.advance st;
  check_bool "op 1 ready next cycle" true (Sb_sched.Scheduler_core.is_ready st 1);
  Alcotest.check_raises "placing unready op"
    (Invalid_argument "Scheduler_core.place: op 2 not ready") (fun () ->
      Sb_sched.Scheduler_core.place st 2)

let test_engine_resources () =
  let sb = Fixtures.star 4 in
  let st = Sb_sched.Scheduler_core.create Config.gp2 sb in
  Sb_sched.Scheduler_core.place st 0;
  Sb_sched.Scheduler_core.place st 1;
  (* Two-wide machine: third op must wait. *)
  check_bool "ready but not placeable" true
    (Sb_sched.Scheduler_core.is_ready st 2
    && not (Sb_sched.Scheduler_core.is_placeable st 2));
  Sb_sched.Scheduler_core.advance st;
  check_bool "placeable next cycle" true (Sb_sched.Scheduler_core.is_placeable st 2)

let test_engine_members () =
  (* Restricting to a member set schedules only those ops (G*'s use). *)
  let sb = Fixtures.fig1 () in
  let br3 = Sb_ir.Superblock.branch_op sb 0 in
  let members =
    let s = Sb_ir.Bitset.copy (Sb_ir.Dep_graph.transitive_preds sb.Sb_ir.Superblock.graph br3) in
    Sb_ir.Bitset.add s br3;
    s
  in
  let t =
    Sb_sched.Scheduler_core.run_static ~members Config.gp2 sb
      ~priority:(fun _ -> 0.)
  in
  check_int "side exit alone finishes at its bound" 2
    (Sb_sched.Scheduler_core.issue_time t br3);
  check_bool "non-members untouched" true
    (Sb_sched.Scheduler_core.issue_time t (br3 + 1) < 0)

let test_schedule_validation () =
  let sb = Fixtures.chain 3 in
  (match Sb_sched.Schedule.validate Config.gp2 sb ~issue:[| 0; 1; 2; 3 |] with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid schedule rejected: %s" e);
  (match Sb_sched.Schedule.validate Config.gp2 sb ~issue:[| 0; 0; 1; 2 |] with
  | Ok () -> Alcotest.fail "latency violation accepted"
  | Error _ -> ());
  (match Sb_sched.Schedule.validate Config.gp1 sb ~issue:[| 0; 1; 2; -1 |] with
  | Ok () -> Alcotest.fail "unscheduled op accepted"
  | Error _ -> ());
  let star = Fixtures.star 3 in
  match Sb_sched.Schedule.validate Config.gp2 star ~issue:[| 0; 0; 0; 1 |] with
  | Ok () -> Alcotest.fail "resource violation accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Heuristics on the paper's examples                                  *)
(* ------------------------------------------------------------------ *)

(* Figure 1: SR/Help/Balance schedule both exits at their bounds; CP
   (and friends) delay the side exit. *)
let test_fig1_heuristics () =
  let sb = Fixtures.fig1 () in
  let config = Config.gp2 in
  let issue_of h k =
    let s = (h : Sb_sched.Registry.heuristic).run config sb in
    s.Sb_sched.Schedule.issue.(Sb_ir.Superblock.branch_op sb k)
  in
  check_int "SR: side exit at bound" 2 (issue_of Sb_sched.Registry.sr 0);
  check_int "SR: final exit at bound" 8 (issue_of Sb_sched.Registry.sr 1);
  check_int "Balance: side exit at bound" 2 (issue_of Sb_sched.Registry.balance 0);
  check_int "Balance: final exit at bound" 8 (issue_of Sb_sched.Registry.balance 1);
  check_int "Help: side exit at bound" 2 (issue_of Sb_sched.Registry.help 0);
  check_bool "CP delays the side exit" true (issue_of Sb_sched.Registry.cp 0 > 2);
  check_int "CP: final exit still at bound" 8 (issue_of Sb_sched.Registry.cp 1)

(* The hand-verified tradeoff fixture: Balance matches the (tight)
   Pairwise bound at every probability; fixed-bias heuristics each fail
   somewhere. *)
let test_tradeoff_heuristics () =
  let config = Config.gp1 in
  List.iter
    (fun p ->
      let sb = Fixtures.tradeoff ~p () in
      let bound = Sb_bounds.Superblock_bound.tightest config sb in
      let balance = wct (Sb_sched.Registry.balance.run config sb) in
      check_float
        (Printf.sprintf "Balance optimal at p=%.2f" p)
        bound balance)
    [ 0.1; 0.26; 0.5; 0.9 ];
  (* SR always favours the side exit; at p=0.1 that is wrong. *)
  let sb = Fixtures.tradeoff ~p:0.1 () in
  let bound = Sb_bounds.Superblock_bound.tightest config sb in
  check_bool "SR suboptimal at p=0.1" true
    (wct (Sb_sched.Registry.sr.run config sb) > bound +. 1e-9);
  (* CP always favours the final exit; at p=0.9 that is wrong. *)
  let sb = Fixtures.tradeoff ~p:0.9 () in
  let bound = Sb_bounds.Superblock_bound.tightest config sb in
  check_bool "CP suboptimal at p=0.9" true
    (wct (Sb_sched.Registry.cp.run config sb) > bound +. 1e-9)

let test_tradeoff_flips_with_probability () =
  let config = Config.gp1 in
  let side_issue p =
    let sb = Fixtures.tradeoff ~p () in
    let s = Sb_sched.Registry.balance.run config sb in
    s.Sb_sched.Schedule.issue.(Sb_ir.Superblock.branch_op sb 0)
  in
  (* Unlikely side exit: delayed for the final exit's benefit. *)
  check_int "p=0.1: side exit sacrificed" 2 (side_issue 0.1);
  (* Dominant side exit: taken early even though the final exit slips. *)
  check_int "p=0.9: side exit first" 1 (side_issue 0.9)

let test_all_heuristics_produce_valid_schedules () =
  List.iter
    (fun sb ->
      List.iter
        (fun config ->
          List.iter
            (fun (h : Sb_sched.Registry.heuristic) ->
              (* Schedule.make validates dependences and resources;
                 reaching here without an exception is the test. *)
              let s = h.run config sb in
              check_bool
                (Printf.sprintf "%s/%s/%s wct positive" h.short
                   config.Config.name sb.Sb_ir.Superblock.name)
                true (wct s > 0.))
            Sb_sched.Registry.all)
        [ Config.gp1; Config.gp4; Config.fs6 ])
    (Fixtures.random_superblocks ~n:8 ())

let test_determinism () =
  let sb = List.hd (Fixtures.random_superblocks ~n:1 ~seed:42L ()) in
  List.iter
    (fun (h : Sb_sched.Registry.heuristic) ->
      let a = h.run Config.fs4 sb and b = h.run Config.fs4 sb in
      Alcotest.(check (array int))
        (h.short ^ " deterministic") a.Sb_sched.Schedule.issue
        b.Sb_sched.Schedule.issue)
    Sb_sched.Registry.all

let test_best_not_worse_than_primaries () =
  List.iter
    (fun sb ->
      let best = wct (Sb_sched.Registry.best.run Config.fs4 sb) in
      List.iter
        (fun (h : Sb_sched.Registry.heuristic) ->
          check_bool
            (Printf.sprintf "Best <= %s on %s" h.short sb.Sb_ir.Superblock.name)
            true
            (best <= wct (h.run Config.fs4 sb) +. 1e-9))
        Sb_sched.Registry.primaries)
    (Fixtures.random_superblocks ~n:6 ~seed:0xF00DL ())

let test_gstar_between_sr_and_cp () =
  (* On the figure-1 instance G* selects the last branch as critical and
     behaves like CP, as the paper notes. *)
  let sb = Fixtures.fig1 () in
  let g = Sb_sched.Registry.gstar.run Config.gp2 sb in
  let c = Sb_sched.Registry.cp.run Config.gp2 sb in
  check_float "G* = CP here" (wct c) (wct g)

let test_balance_options_all_valid () =
  let sb = List.hd (Fixtures.random_superblocks ~n:1 ~seed:7L ()) in
  List.iter
    (fun use_bounds ->
      List.iter
        (fun use_hlpdel ->
          List.iter
            (fun use_tradeoff ->
              List.iter
                (fun update ->
                  let options =
                    {
                      Sb_sched.Balance.use_bounds;
                      use_hlpdel;
                      use_tradeoff;
                      update;
                    }
                  in
                  let s = Sb_sched.Balance.schedule ~options Config.fs4 sb in
                  check_bool "valid schedule" true (wct s > 0.))
                [ Sb_sched.Balance.Full; Sb_sched.Balance.Light;
                  Sb_sched.Balance.Per_cycle ])
            [ true; false ])
        [ true; false ])
    [ true; false ]

let test_balance_precomputed_identical () =
  let sb = List.hd (Fixtures.random_superblocks ~n:1 ~seed:99L ()) in
  let all = Sb_bounds.Superblock_bound.all_bounds Config.fs4 sb in
  let a = Sb_sched.Balance.schedule Config.fs4 sb in
  let b = Sb_sched.Balance.schedule ~precomputed:all Config.fs4 sb in
  Alcotest.(check (array int))
    "precomputed bounds do not change the schedule" a.Sb_sched.Schedule.issue
    b.Sb_sched.Schedule.issue

let test_narrow_wide_shape () =
  (* The paper's qualitative claim: SR beats CP on narrow machines, CP
     catches up on wide ones.  Check on the aggregate of a random set. *)
  let sbs = Fixtures.random_superblocks ~n:30 ~seed:0xABCL () in
  let total h config =
    List.fold_left (fun acc sb -> acc +. wct ((h : Sb_sched.Registry.heuristic).run config sb)) 0. sbs
  in
  check_bool "SR <= CP on GP1" true
    (total Sb_sched.Registry.sr Config.gp1 <= total Sb_sched.Registry.cp Config.gp1);
  check_bool "Balance <= SR on GP1" true
    (total Sb_sched.Registry.balance Config.gp1
    <= total Sb_sched.Registry.sr Config.gp1 +. 1e-6);
  check_bool "Balance <= CP on GP4" true
    (total Sb_sched.Registry.balance Config.gp4
    <= total Sb_sched.Registry.cp Config.gp4 +. 1e-6)

let test_optimal_oracle_fixture () =
  (* The exact scheduler certifies the hand analysis: the Pairwise bound
     IS the optimum of the tradeoff fixture at every probability. *)
  List.iter
    (fun p ->
      let sb = Fixtures.tradeoff ~p () in
      let r = Sb_sched.Optimal.schedule Config.gp1 sb in
      check_bool "proved on a 5-op superblock" true
        r.Sb_sched.Optimal.proved_optimal;
      check_float
        (Printf.sprintf "optimal = tightest bound at p=%.2f" p)
        (Sb_bounds.Superblock_bound.tightest Config.gp1 sb)
        r.Sb_sched.Optimal.wct)
    [ 0.1; 0.26; 0.5; 0.9 ]

let test_optimal_oracle_random () =
  (* On tiny random superblocks: bound <= optimum <= Best, and the
     tightest bound is the optimum most of the time. *)
  let profile =
    {
      Sb_workload.Generator.default_profile with
      Sb_workload.Generator.max_ops = 11;
      block_ops_mean = 3.0;
    }
  in
  let sbs = Sb_workload.Generator.generate_many ~seed:77L profile 12 in
  let tight = ref 0 and total = ref 0 in
  List.iter
    (fun sb ->
      List.iter
        (fun config ->
          let r = Sb_sched.Optimal.schedule ~node_budget:400_000 config sb in
          if r.Sb_sched.Optimal.proved_optimal then begin
            incr total;
            let opt = r.Sb_sched.Optimal.wct in
            let bound = Sb_bounds.Superblock_bound.tightest config sb in
            check_bool "bound <= optimum" true (bound <= opt +. 1e-9);
            check_bool "optimum <= Best" true
              (opt <= wct (Sb_sched.Registry.best.run config sb) +. 1e-9);
            if opt <= bound +. 1e-9 then incr tight
          end)
        [ Config.gp2; Config.fs4 ])
    sbs;
  check_bool
    (Printf.sprintf "bound tight on most tiny instances (%d/%d)" !tight !total)
    true
    (!tight * 10 >= !total * 8)

let test_light_update_quality () =
  (* The light update must not cost schedule quality: on a corpus slice
     its aggregate WCT stays within a whisker of full recomputation (it
     was exactly equal on every corpus we measured). *)
  let sbs = Fixtures.random_superblocks ~n:20 ~seed:0x11E4L () in
  let total update =
    List.fold_left
      (fun acc sb ->
        acc
        +. wct
             (Sb_sched.Balance.schedule
                ~options:{ Sb_sched.Balance.default_options with update }
                Config.fs4 sb))
      0. sbs
  in
  let full = total Sb_sched.Balance.Full in
  let light = total Sb_sched.Balance.Light in
  check_bool
    (Printf.sprintf "light within 2%% of full (%.2f vs %.2f)" light full)
    true
    (light <= full *. 1.02 +. 1e-9)

let test_registry () =
  check_int "seven heuristics" 7 (List.length Sb_sched.Registry.all);
  check_bool "lookup by short name" true
    (Sb_sched.Registry.by_name "g*" <> None);
  check_bool "lookup by long name" true
    (Sb_sched.Registry.by_name "successive-retirement" <> None);
  check_bool "unknown name" true (Sb_sched.Registry.by_name "zorp" = None)

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "sched.engine",
      [
        tc "readiness and latency" test_engine_basic;
        tc "resource limits" test_engine_resources;
        tc "member subsets" test_engine_members;
        tc "schedule validation" test_schedule_validation;
      ] );
    ( "sched.paper_examples",
      [
        tc "figure 1" test_fig1_heuristics;
        tc "tradeoff fixture" test_tradeoff_heuristics;
        tc "tradeoff flips with probability" test_tradeoff_flips_with_probability;
        tc "G* equals CP on figure 1" test_gstar_between_sr_and_cp;
      ] );
    ( "sched.heuristics",
      [
        tc "all produce valid schedules" test_all_heuristics_produce_valid_schedules;
        tc "determinism" test_determinism;
        tc "Best dominates primaries" test_best_not_worse_than_primaries;
        tc "Balance ablation options" test_balance_options_all_valid;
        tc "Balance precomputed reuse" test_balance_precomputed_identical;
        tc "narrow/wide machine shape" test_narrow_wide_shape;
        tc "exact oracle: tradeoff fixture" test_optimal_oracle_fixture;
        tc "exact oracle: tiny random blocks" test_optimal_oracle_random;
        tc "light update quality" test_light_update_quality;
        tc "registry" test_registry;
      ] );
  ]
