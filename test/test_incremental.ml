(* Differential lockdown of the incremental dynamic-bound machinery.

   The cache in Dyn_bounds.Cache claims to be *exact*: a surviving slot
   is byte-identical to what a fresh [analyze] would return against the
   same partial schedule.  These tests replay real Balance schedules
   event by event and diff every field of every branch's info after
   every placement and every cycle advance, then check that the
   end-to-end artifacts — schedules, evaluation records, rendered
   experiment tables — cannot tell [~incremental:true] from
   [~incremental:false]. *)

open Sb_ir
open Sb_machine
module Core = Sb_sched.Scheduler_core
module Dyn = Sb_sched.Dyn_bounds

let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Blocks and configs under test                                       *)
(* ------------------------------------------------------------------ *)

let fixture_blocks () =
  [
    ("fig1", Fixtures.fig1 ());
    ("fig4", Fixtures.fig4 ());
    ("star8", Fixtures.star 8);
    ("chain12", Fixtures.chain 12);
    ("tradeoff", Fixtures.tradeoff ());
  ]

let random_blocks =
  lazy
    (List.mapi
       (fun i sb -> (Printf.sprintf "rand%d" i, sb))
       (Fixtures.random_superblocks ~n:25 ~seed:0xACEDL ()))

let all_blocks () = fixture_blocks () @ Lazy.force random_blocks

(* ------------------------------------------------------------------ *)
(* Info equality                                                       *)
(* ------------------------------------------------------------------ *)

let erc_repr (e : Dyn.erc) = (e.resource, e.deadline, e.ops, e.empty)

let check_same_info ctx (fresh : Dyn.info) (cached : Dyn.info) =
  let chk what t a b = Alcotest.check t (ctx ^ " " ^ what) a b in
  chk "early" Alcotest.int fresh.early cached.early;
  chk "frontier" Alcotest.int fresh.frontier cached.frontier;
  chk "adjust" Alcotest.int fresh.adjust cached.adjust;
  chk "earlies" Alcotest.(array int) fresh.earlies cached.earlies;
  chk "late" Alcotest.(array int) fresh.late cached.late;
  chk "need_each" Alcotest.(list int) fresh.need_each cached.need_each;
  chk "ercs"
    Alcotest.(list (pair (pair int int) (pair (list int) int)))
    (List.map erc_repr fresh.ercs |> List.map (fun (a, b, c, d) -> ((a, b), (c, d))))
    (List.map erc_repr cached.ercs |> List.map (fun (a, b, c, d) -> ((a, b), (c, d))));
  chk "need_one"
    Alcotest.(list (pair int (list int)))
    (Dyn.need_one fresh) (Dyn.need_one cached)

(* ------------------------------------------------------------------ *)
(* Event-by-event replay: Cache.refresh vs a fresh analyze             *)
(* ------------------------------------------------------------------ *)

(* Replays the from-scratch Balance schedule of [sb] on a fresh engine
   with a cache attached (same floors as Balance's defaults) and, after
   every event, compares the cached info of every live branch with a
   from-scratch [analyze].  [chaos] randomly force-invalidates slots
   between events, asserting that dropping cache state never changes a
   result. *)
let replay_check ?(chaos = false) name config sb =
  let reference = Sb_sched.Balance.schedule ~incremental:false config sb in
  let issue = reference.Sb_sched.Schedule.issue in
  let g = sb.Superblock.graph in
  let n = Superblock.n_ops sb in
  let nb = Superblock.n_branches sb in
  let erc = Sb_bounds.Langevin_cerny.early_rc config sb in
  let analysis =
    Sb_bounds.Analysis.create ~memoize:false config sb ~early_rc:erc
  in
  let late_floors =
    Array.init nb (fun k -> Some (Sb_bounds.Analysis.late_floor analysis k))
  in
  let st = Core.create config sb in
  let cache =
    Dyn.Cache.create ~early_floor:erc ~late_floors ~with_erc:true st
  in
  let rng = Random.State.make [| 0x5EED; Superblock.n_ops sb |] in
  let check ctx =
    if chaos && Random.State.int rng 4 = 0 then
      Dyn.Cache.force_invalidate cache
        ~branch_index:(Random.State.int rng nb);
    for k = 0 to nb - 1 do
      if not (Core.is_scheduled st (Superblock.branch_op sb k)) then begin
        let cached =
          match Dyn.Cache.refresh cache ~branch_index:k with
          | Some info -> info
          | None -> Alcotest.failf "%s: live branch %d had no info" ctx k
        in
        let fresh =
          Dyn.analyze ~early_floor:erc ?late_floor:late_floors.(k)
            ~with_erc:true st ~branch_index:k
        in
        check_same_info (Printf.sprintf "%s branch %d" ctx k) fresh cached
      end
    done
  in
  let pos = Array.make n 0 in
  Array.iteri (fun i v -> pos.(v) <- i) (Dep_graph.topo_order g);
  let by_cycle = Array.make reference.Sb_sched.Schedule.length [] in
  Array.iteri (fun v c -> by_cycle.(c) <- v :: by_cycle.(c)) issue;
  check (Printf.sprintf "%s/%s initial" name config.Config.name);
  Array.iteri
    (fun c ops ->
      List.iter
        (fun v ->
          if not (Core.is_placeable st v) then
            Alcotest.failf "%s/%s: replay op %d not placeable at cycle %d"
              name config.Config.name v c;
          Core.place st v;
          check
            (Printf.sprintf "%s/%s after placing %d @%d" name
               config.Config.name v c))
        (List.sort (fun a b -> compare pos.(a) pos.(b)) ops);
      if not (Core.finished st) then begin
        Core.advance st;
        check
          (Printf.sprintf "%s/%s after advance to %d" name config.Config.name
             (Core.cycle st))
      end)
    by_cycle

let test_replay () =
  List.iter
    (fun config ->
      List.iter
        (fun (name, sb) -> replay_check name config sb)
        (all_blocks ()))
    Config.all

let test_replay_chaos () =
  List.iter
    (fun config ->
      List.iter
        (fun (name, sb) -> replay_check ~chaos:true name config sb)
        (fixture_blocks () @ [ List.nth (Lazy.force random_blocks) 0 ]))
    [ Config.gp2; Config.fs4 ]

(* ------------------------------------------------------------------ *)
(* Final schedules identical                                           *)
(* ------------------------------------------------------------------ *)

let check_same_schedule what (a : Sb_sched.Schedule.t)
    (b : Sb_sched.Schedule.t) =
  Alcotest.(check (array int)) (what ^ " issue cycles") a.issue b.issue

let test_schedules name run =
  List.iter
    (fun config ->
      List.iter
        (fun (bname, sb) ->
          check_same_schedule
            (Printf.sprintf "%s %s/%s" name bname config.Config.name)
            (run ~incremental:false config sb)
            (run ~incremental:true config sb))
        (all_blocks ()))
    Config.all

let test_balance_identical () =
  test_schedules "balance" (fun ~incremental config sb ->
      Sb_sched.Balance.schedule ~incremental config sb)

let test_help_identical () =
  test_schedules "help" (fun ~incremental config sb ->
      Sb_sched.Help.schedule ~incremental config sb)

let test_best_identical () =
  (* Best runs 127 schedules per call; keep the grid small. *)
  let blocks =
    fixture_blocks ()
    @ (List.filteri (fun i _ -> i < 6) (Lazy.force random_blocks))
  in
  List.iter
    (fun config ->
      List.iter
        (fun (bname, sb) ->
          check_same_schedule
            (Printf.sprintf "best %s/%s" bname config.Config.name)
            (Sb_sched.Best.schedule ~incremental:false config sb)
            (Sb_sched.Best.schedule ~incremental:true config sb))
        blocks)
    [ Config.gp1; Config.gp4; Config.fs6 ]

(* ------------------------------------------------------------------ *)
(* Evaluation records and experiment tables identical                  *)
(* ------------------------------------------------------------------ *)

let test_records_identical_parallel () =
  (* 2-domain pool on the incremental side to cover the DLS interaction
     of the Work counters with the cache counters. *)
  let sbs = Fixtures.random_superblocks ~n:10 ~seed:0xF00DL () in
  let scratch =
    Sb_eval.Metrics.evaluate ~with_tw:false ~incremental:false Config.fs6 sbs
  in
  let inc =
    Sb_eval.Metrics.evaluate ~with_tw:false ~incremental:true ~jobs:2
      Config.fs6 sbs
  in
  check_int "same count" (List.length scratch) (List.length inc);
  List.iter2
    (fun (a : Sb_eval.Metrics.record) (b : Sb_eval.Metrics.record) ->
      Alcotest.(check (list (pair string (float 0.))))
        "identical wct assoc list" a.Sb_eval.Metrics.wct b.Sb_eval.Metrics.wct;
      Alcotest.(check (float 0.))
        "identical tightest bound" (Sb_eval.Metrics.bound a)
        (Sb_eval.Metrics.bound b))
    scratch inc

(* Tables 1–7 + Figure 8 string-identical between the paths; table 6's
   wall-clock column is the single legitimate difference, so it is
   dropped before comparing.  CI reruns this at corpus scale via
   INCREMENTAL_DIFF_SCALE. *)
let test_tables_identical () =
  let setup ~incremental =
    match Sys.getenv_opt "INCREMENTAL_DIFF_SCALE" with
    | Some s ->
        Sb_eval.Experiments.default_setup ~scale:(float_of_string s)
          ~incremental ()
    | None ->
        {
          (Sb_eval.Experiments.default_setup ~scale:0.002 ~incremental ()) with
          Sb_eval.Experiments.configs = [ Config.gp2; Config.fs4 ];
          heavy_configs = [ Config.fs4 ];
        }
  in
  let inc = Sb_eval.Experiments.prepare (setup ~incremental:true) in
  let scratch = Sb_eval.Experiments.prepare (setup ~incremental:false) in
  List.iter
    (fun (name, table) ->
      Alcotest.(check string)
        (name ^ " identical")
        (Sb_eval.Table.render (table scratch))
        (Sb_eval.Table.render (table inc)))
    [
      ("table1", Sb_eval.Experiments.table1);
      ("table2", Sb_eval.Experiments.table2);
      ("table3", Sb_eval.Experiments.table3);
      ("table4", Sb_eval.Experiments.table4);
      ("table5", Sb_eval.Experiments.table5);
      ("table7", Sb_eval.Experiments.table7);
      ("figure8", Sb_eval.Experiments.figure8);
    ];
  let drop_wall_clock (t : Sb_eval.Table.t) =
    let drop_last row = List.filteri (fun i _ -> i < List.length row - 1) row in
    {
      t with
      Sb_eval.Table.headers = drop_last t.Sb_eval.Table.headers;
      rows = List.map drop_last t.Sb_eval.Table.rows;
    }
  in
  Alcotest.(check string)
    "table6 identical up to wall clock"
    (Sb_eval.Table.render (drop_wall_clock (Sb_eval.Experiments.table6 scratch)))
    (Sb_eval.Table.render (drop_wall_clock (Sb_eval.Experiments.table6 inc)))

(* The CI guard's counterpart at unit scale: the cache must actually be
   hitting, otherwise the whole layer is dead weight. *)
let test_cache_hits_nonzero () =
  Sb_bounds.Work.reset ();
  List.iter
    (fun (_, sb) ->
      ignore (Sb_sched.Balance.schedule Config.fs6 sb : Sb_sched.Schedule.t))
    (all_blocks ());
  Alcotest.(check bool)
    "cache.dyn.hit > 0" true
    (Sb_bounds.Work.get "cache.dyn.hit" > 0);
  Sb_bounds.Work.reset ()

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "incremental.replay",
      [
        tc "info identical at every event" test_replay;
        tc "random invalidation is conservative" test_replay_chaos;
      ] );
    ( "incremental.schedules",
      [
        tc "balance identical" test_balance_identical;
        tc "help identical" test_help_identical;
        tc "best identical" test_best_identical;
      ] );
    ( "incremental.evaluation",
      [
        tc "records identical (2-domain pool)" test_records_identical_parallel;
        tc "tables identical" test_tables_identical;
        tc "cache hits nonzero" test_cache_hits_nonzero;
      ] );
  ]
