(* Differential tests for the CSR (struct-of-arrays) IR layout.

   The Dep_graph rewrite replaced nested [(dst, lat) array array]
   adjacency with packed CSR int arrays.  These tests pit the CSR
   accessors against a naive nested-list oracle built independently from
   the same edge list: neighbour contents (both directions), degrees,
   indexed accessors, topological-order validity, transitive closures,
   and the O(1) [reverse] / [reverse_filtered] constructions.

   Also here: the Kwise full-list tuple hash regression (polymorphic
   [Hashtbl.hash] only walks a bounded list prefix), Bitset in-place
   set algebra + arena reuse, and an allocation-regression test pinning
   the minor-heap cost of a Dyn_bounds cache event. *)

open Sb_ir

let count n = n

(* ----------------------- random DAG generator ---------------------- *)

let seed_gen = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100_000)

(* Edges only from lower to higher ids: acyclic by construction, with
   duplicate (src, dst) pairs left in to exercise max-latency merging. *)
let random_dag seed =
  let rng = Sb_workload.Rng.create (Int64.of_int ((seed * 31) + 5)) in
  let n = 2 + Sb_workload.Rng.int rng 40 in
  let edges = ref [] in
  for dst = 1 to n - 1 do
    for _ = 1 to Sb_workload.Rng.int rng 4 do
      let src = Sb_workload.Rng.int rng dst in
      edges :=
        { Dep_graph.src; dst; latency = Sb_workload.Rng.int rng 4 } :: !edges
    done
  done;
  (n, !edges)

(* The oracle: merge duplicates keeping max latency, store neighbours as
   sorted association lists per node — the shape the old implementation
   exposed, built with none of the new code. *)
let oracle ~n edges =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun { Dep_graph.src; dst; latency } ->
      match Hashtbl.find_opt tbl (src, dst) with
      | Some l when l >= latency -> ()
      | _ -> Hashtbl.replace tbl (src, dst) latency)
    edges;
  let succs = Array.make n [] and preds = Array.make n [] in
  Hashtbl.iter
    (fun (s, d) l ->
      succs.(s) <- (d, l) :: succs.(s);
      preds.(d) <- (s, l) :: preds.(d))
    tbl;
  (Array.map (List.sort compare) succs, Array.map (List.sort compare) preds)

let closure_of nexts n v =
  (* Iterative DFS over the oracle's adjacency lists. *)
  let seen = Array.make n false in
  let rec go u =
    List.iter
      (fun (w, _) ->
        if not seen.(w) then begin
          seen.(w) <- true;
          go w
        end)
      nexts.(u)
  in
  go v;
  seen.(v) <- false;
  (* strict *)
  List.filter (fun w -> seen.(w)) (List.init n Fun.id)

let prop_csr_matches_oracle =
  QCheck.Test.make ~name:"CSR adjacency agrees with nested-list oracle"
    ~count:(count 150) seed_gen (fun seed ->
      let n, edges = random_dag seed in
      let g = Dep_graph.make ~n edges in
      let o_succs, o_preds = oracle ~n edges in
      let ok = ref true in
      let fail () = ok := false in
      for v = 0 to n - 1 do
        (* Legacy nested views: identical contents, canonical order. *)
        if Array.to_list (Dep_graph.succs g v) <> o_succs.(v) then fail ();
        if Array.to_list (Dep_graph.preds g v) <> o_preds.(v) then fail ();
        (* Degrees. *)
        if Dep_graph.out_degree g v <> List.length o_succs.(v) then fail ();
        if Dep_graph.in_degree g v <> List.length o_preds.(v) then fail ();
        (* Zero-copy iterators replay the same sequences. *)
        let acc = ref [] in
        Dep_graph.iter_succs g v (fun d l -> acc := (d, l) :: !acc);
        if List.rev !acc <> o_succs.(v) then fail ();
        let acc = ref [] in
        Dep_graph.iter_preds g v (fun s l -> acc := (s, l) :: !acc);
        if List.rev !acc <> o_preds.(v) then fail ();
        (* Indexed accessors. *)
        List.iteri
          (fun i (d, l) ->
            if Dep_graph.succ_dst_at g v i <> d then fail ();
            if Dep_graph.succ_lat_at g v i <> l then fail ())
          o_succs.(v);
        List.iteri
          (fun i (s, l) ->
            if Dep_graph.pred_src_at g v i <> s then fail ();
            if Dep_graph.pred_lat_at g v i <> l then fail ())
          o_preds.(v);
        (* Folds and the short-circuit for-all. *)
        let sum =
          Dep_graph.fold_succs g v (fun acc d l -> acc + d + l) 0
        in
        if sum <> List.fold_left (fun acc (d, l) -> acc + d + l) 0 o_succs.(v)
        then fail ();
        if
          Dep_graph.for_all_preds g v (fun s _ -> s < v)
          <> List.for_all (fun (s, _) -> s < v) o_preds.(v)
        then fail ()
      done;
      !ok)

let prop_csr_topo_and_closures =
  QCheck.Test.make ~name:"CSR topo order and transitive closures are sound"
    ~count:(count 150) seed_gen (fun seed ->
      let n, edges = random_dag seed in
      let g = Dep_graph.make ~n edges in
      let o_succs, o_preds = oracle ~n edges in
      let order = Dep_graph.topo_order g in
      let pos = Array.make n (-1) in
      Array.iteri (fun i v -> pos.(v) <- i) order;
      (* A permutation of 0..n-1 respecting every edge. *)
      Array.length order = n
      && Array.for_all (fun p -> p >= 0) pos
      && List.for_all
           (fun { Dep_graph.src; dst; _ } -> pos.(src) < pos.(dst))
           (Dep_graph.edges g)
      && List.for_all
           (fun v ->
             Bitset.elements (Dep_graph.transitive_succs g v)
             = closure_of o_succs n v
             && Bitset.elements (Dep_graph.transitive_preds g v)
                = closure_of o_preds n v)
           (List.init n Fun.id))

let prop_reverse_and_filtered =
  QCheck.Test.make ~name:"reverse and reverse_filtered agree with the oracle"
    ~count:(count 150) seed_gen (fun seed ->
      let n, edges = random_dag seed in
      let g = Dep_graph.make ~n edges in
      let o_succs, o_preds = oracle ~n edges in
      let r = Dep_graph.reverse g in
      let keep v = (v * 2654435761) land 4 <> 0 in
      let rf = Dep_graph.reverse_filtered g ~keep in
      let kept_rev_succs v =
        if not (keep v) then []
        else List.filter (fun (s, _) -> keep s) o_preds.(v)
      in
      List.for_all
        (fun v ->
          Array.to_list (Dep_graph.succs r v) = o_preds.(v)
          && Array.to_list (Dep_graph.preds r v) = o_succs.(v)
          && Array.to_list (Dep_graph.succs rf v) = kept_rev_succs v
          && Dep_graph.in_degree rf v
             = List.length
                 (if keep v then
                    List.filter (fun (d, _) -> keep d) o_succs.(v)
                  else []))
        (List.init n Fun.id)
      && Dep_graph.n_edges r = Dep_graph.n_edges g
      && Dep_graph.n_edges rf
         = List.length
             (List.concat_map
                (fun v ->
                  if keep v then
                    List.filter (fun (d, _) -> keep d) o_succs.(v)
                  else [])
                (List.init n Fun.id)))

let test_n_edges_merges_duplicates () =
  let g =
    Dep_graph.make ~n:3
      [
        { Dep_graph.src = 0; dst = 1; latency = 1 };
        { Dep_graph.src = 0; dst = 1; latency = 3 };
        { Dep_graph.src = 1; dst = 2; latency = 0 };
      ]
  in
  Alcotest.(check int) "merged edge count" 2 (Dep_graph.n_edges g);
  Alcotest.(check int) "max latency kept" 3 (Dep_graph.succ_lat_at g 0 0)

(* ------------------------- kwise tuple hash ------------------------ *)

(* [Hashtbl.hash] examines at most 10 meaningful nodes, so int lists
   sharing a 10-element prefix all collide no matter how they continue.
   The keyed memo's full-list hash must separate them. *)
let test_kwise_full_list_hash () =
  let prefix = List.init 12 Fun.id in
  let a = prefix @ [ 100 ] and b = prefix @ [ 200 ] in
  Alcotest.(check bool)
    "polymorphic hash collides past its traversal limit" true
    (Hashtbl.hash a = Hashtbl.hash b);
  Alcotest.(check bool)
    "full-list hash separates them" true
    (Sb_bounds.Kwise.tuple_key_hash a <> Sb_bounds.Kwise.tuple_key_hash b);
  (* No mass collisions across a family of long tuples that are
     indistinguishable to the polymorphic hash. *)
  let tuples = List.init 64 (fun i -> prefix @ [ i; i * 7 ]) in
  let hashes =
    List.sort_uniq compare
      (List.map Sb_bounds.Kwise.tuple_key_hash tuples)
  in
  Alcotest.(check bool)
    "at least 60 of 64 long tuples hash distinctly" true
    (List.length hashes >= 60)

let prop_kwise_hash_consistent =
  QCheck.Test.make ~name:"tuple hash is equal on equal lists"
    ~count:(count 200)
    (QCheck.list_of_size QCheck.Gen.(int_bound 30) (QCheck.int_bound 1000))
    (fun l ->
      Sb_bounds.Kwise.tuple_key_hash l
      = Sb_bounds.Kwise.tuple_key_hash (List.map Fun.id l)
      && Sb_bounds.Kwise.tuple_key_hash l >= 0)

(* --------------------- bitset in-place algebra --------------------- *)

let small_int_list =
  QCheck.list_of_size QCheck.Gen.(int_bound 30) (QCheck.int_bound 199)

let prop_bitset_into_ops =
  QCheck.Test.make ~name:"inter_into/diff_into match their pure versions"
    ~count:(count 200)
    (QCheck.pair small_int_list small_int_list)
    (fun (xs, ys) ->
      let a = Bitset.of_list 200 xs and b = Bitset.of_list 200 ys in
      let i = Bitset.copy a in
      Bitset.inter_into i b;
      let d = Bitset.copy a in
      Bitset.diff_into d b;
      Bitset.elements i = Bitset.elements (Bitset.inter a b)
      && Bitset.elements d = Bitset.elements (Bitset.diff a b)
      && (Bitset.clear d;
          Bitset.is_empty d))

let test_bitset_arena_reuse () =
  let s1 = Bitset.Arena.acquire 100 in
  Bitset.add s1 42;
  Bitset.Arena.release s1;
  (* Same capacity: the pooled set comes back, cleared. *)
  let s2 = Bitset.Arena.acquire 100 in
  Alcotest.(check bool) "recycled set is cleared" true (Bitset.is_empty s2);
  Alcotest.(check bool) "same set is reused" true (s1 == s2);
  (* Different capacity draws from a different pool. *)
  let s3 = Bitset.Arena.acquire 64 in
  Alcotest.(check bool) "capacity pools are distinct" true (s2 != s3);
  Bitset.Arena.release s2;
  Bitset.Arena.release s3;
  let r =
    Bitset.Arena.with_set 100 (fun s ->
        Bitset.add s 7;
        Bitset.cardinal s)
  in
  Alcotest.(check int) "with_set passes a usable set" 1 r;
  let s4 = Bitset.Arena.acquire 100 in
  Alcotest.(check bool) "with_set released its set" true (Bitset.is_empty s4);
  Bitset.Arena.release s4

let test_bitset_to_array () =
  let s = Bitset.of_list 200 [ 5; 3; 150; 3 ] in
  Alcotest.(check (array int)) "to_array is sorted uniq" [| 3; 5; 150 |]
    (Bitset.to_array s)

(* --------------------- allocation regression ----------------------- *)

(* Replays a Balance schedule against a Dyn_bounds cache and pins the
   average minor-heap allocation per cache event (refresh after a
   placement or cycle advance).  The struct-of-arrays hot path keeps
   per-event allocation modest and, above all, bounded: regressions that
   reintroduce per-event closure or array churn trip the budget. *)
let test_dyn_event_allocation_budget () =
  let module Core = Sb_sched.Scheduler_core in
  let module Dyn = Sb_sched.Dyn_bounds in
  let config = Sb_machine.Config.gp2 in
  let sb =
    Sb_workload.Generator.generate
      (Sb_workload.Rng.create 0xA110CL)
      { Sb_workload.Generator.default_profile with name = "alloc"; max_ops = 60 }
      ~index:0
  in
  let nb = Superblock.n_branches sb in
  let erc = Sb_bounds.Langevin_cerny.early_rc config sb in
  let reference = Sb_sched.Balance.schedule config sb in
  let issue = reference.Sb_sched.Schedule.issue in
  let by_cycle = Array.make reference.Sb_sched.Schedule.length [] in
  Array.iteri (fun v c -> by_cycle.(c) <- v :: by_cycle.(c)) issue;
  let pos = Array.make (Superblock.n_ops sb) 0 in
  Array.iteri (fun i v -> pos.(v) <- i) (Dep_graph.topo_order sb.Superblock.graph);
  let run () =
    let st = Core.create config sb in
    let cache = Dyn.Cache.create ~early_floor:erc ~with_erc:true st in
    let events = ref 0 in
    let refresh_all () =
      for k = 0 to nb - 1 do
        if not (Core.is_scheduled st (Superblock.branch_op sb k)) then begin
          incr events;
          ignore (Dyn.Cache.refresh cache ~branch_index:k)
        end
      done
    in
    Array.iter
      (fun ops ->
        List.iter
          (fun v ->
            Core.place st v;
            refresh_all ())
          (List.sort (fun a b -> compare pos.(a) pos.(b)) ops);
        if not (Core.finished st) then begin
          Core.advance st;
          refresh_all ()
        end)
      by_cycle;
    !events
  in
  (* Warm up once (lazy nested views, arena pools, memo tables). *)
  ignore (run ());
  let words0 = Gc.minor_words () in
  let events = run () in
  let words = Gc.minor_words () -. words0 in
  let per_event = words /. float_of_int (max 1 events) in
  Alcotest.(check bool)
    (Printf.sprintf "%.0f minor words over %d events (%.0f/event, budget 512)"
       words events per_event)
    true
    (per_event <= 512.)

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "layout",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_csr_matches_oracle;
          prop_csr_topo_and_closures;
          prop_reverse_and_filtered;
          prop_kwise_hash_consistent;
          prop_bitset_into_ops;
        ]
      @ [
          tc "n_edges merges duplicates" test_n_edges_merges_duplicates;
          tc "kwise full-list hash" test_kwise_full_list_hash;
          tc "bitset arena reuse" test_bitset_arena_reuse;
          tc "bitset to_array" test_bitset_to_array;
          tc "dyn event allocation budget" test_dyn_event_allocation_budget;
        ] );
  ]
