(* Unit tests for the evaluation layer: table rendering, metrics and the
   experiment drivers on a miniature corpus. *)

open Sb_machine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Table rendering                                                     *)
(* ------------------------------------------------------------------ *)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_table_render () =
  let t =
    Sb_eval.Table.make ~title:"T" ~headers:[ "a"; "b" ]
      ~notes:[ "n1" ]
      [ [ "x"; "1.00" ]; [ "yy"; "22.00" ] ]
  in
  let s = Sb_eval.Table.render t in
  check_bool "has title" true (String.length s > 0 && s.[0] = 'T');
  check_bool "has note" true (contains ~needle:"note: n1" s);
  check_bool "has header" true (contains ~needle:"a" s)

let test_table_cells () =
  Alcotest.(check string) "f2" "1.23" (Sb_eval.Table.f2 1.2345);
  Alcotest.(check string) "f3" "1.234" (Sb_eval.Table.f3 1.2341);
  Alcotest.(check string) "pct" "12.35%" (Sb_eval.Table.pct 12.345);
  Alcotest.(check string) "int" "7" (Sb_eval.Table.int_cell 7)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let mini_records () =
  let sbs = Fixtures.random_superblocks ~n:6 ~seed:0xE7A1L () in
  Sb_eval.Metrics.evaluate ~with_tw:false Config.fs4 sbs

let test_metrics_evaluate () =
  let records = mini_records () in
  check_int "one record per superblock" 6 (List.length records);
  List.iter
    (fun (r : Sb_eval.Metrics.record) ->
      check_int "all heuristics evaluated"
        (List.length Sb_sched.Registry.all)
        (List.length r.Sb_eval.Metrics.wct);
      List.iter
        (fun (_, w) ->
          check_bool "wct above bound" true
            (w >= Sb_eval.Metrics.bound r -. 1e-6))
        r.Sb_eval.Metrics.wct)
    records

let test_metrics_trivial_and_slowdown () =
  let records = mini_records () in
  (* Best is by construction <= every other heuristic, so its slowdown
     cannot exceed any other heuristic's. *)
  let sd name = Sb_eval.Metrics.slowdown_nontrivial records name in
  List.iter
    (fun (h : Sb_sched.Registry.heuristic) ->
      check_bool
        (Printf.sprintf "Best slowdown <= %s" h.short)
        true
        (sd "Best" <= sd h.short +. 1e-9))
    Sb_sched.Registry.primaries;
  check_bool "slowdowns nonnegative" true (sd "Best" >= 0.);
  let frac = Sb_eval.Metrics.trivial_cycle_fraction records in
  check_bool "trivial fraction in [0,100]" true (frac >= 0. && frac <= 100.);
  (* A trivial record is optimal for everyone. *)
  List.iter
    (fun (r : Sb_eval.Metrics.record) ->
      if Sb_eval.Metrics.is_trivial r then
        List.iter
          (fun (h : Sb_sched.Registry.heuristic) ->
            check_bool "trivial => optimal" true
              (Sb_eval.Metrics.optimal r h.short))
          Sb_sched.Registry.all)
    records

let test_metrics_helpers () =
  check_float "mean" 2.5 (Sb_eval.Metrics.mean [ 1.; 2.; 3.; 4. ]);
  check_float "mean empty" 0. (Sb_eval.Metrics.mean []);
  check_int "median" 3 (Sb_eval.Metrics.median_int [ 5; 1; 3; 2; 9 ]);
  check_int "median even = lower middle" 2
    (Sb_eval.Metrics.median_int [ 4; 1; 3; 2 ]);
  check_int "median empty" 0 (Sb_eval.Metrics.median_int [])

let test_metrics_unknown_heuristic () =
  let records = mini_records () in
  Alcotest.check_raises "unknown heuristic"
    (Invalid_argument "Metrics: heuristic \"Zorp\" not evaluated") (fun () ->
      ignore (Sb_eval.Metrics.slowdown_nontrivial records "Zorp"))

(* ------------------------------------------------------------------ *)
(* Experiment drivers on a miniature corpus                            *)
(* ------------------------------------------------------------------ *)

let tiny_prepared =
  lazy
    (let setup =
       {
         (Sb_eval.Experiments.default_setup ~scale:0.002 ()) with
         Sb_eval.Experiments.configs = [ Config.gp2; Config.fs4 ];
         heavy_configs = [ Config.fs4 ];
       }
     in
     Sb_eval.Experiments.prepare setup)

let nonempty_table name t =
  let rendered = Sb_eval.Table.render t in
  check_bool (name ^ " renders") true (String.length rendered > 40);
  check_bool (name ^ " has rows") true (List.length t.Sb_eval.Table.rows > 0)

let test_experiments_all () =
  let p = Lazy.force tiny_prepared in
  let all = Sb_eval.Experiments.run_all p in
  check_int "eight experiments" 8 (List.length all);
  List.iter (fun (name, t) -> nonempty_table name t) all

let test_experiment_table_shapes () =
  let p = Lazy.force tiny_prepared in
  let t1 = Sb_eval.Experiments.table1 p in
  check_int "table1: six bounds" 6 (List.length t1.Sb_eval.Table.rows);
  let t3 = Sb_eval.Experiments.table3 p in
  (* one row per config plus the average row *)
  check_int "table3 rows" 3 (List.length t3.Sb_eval.Table.rows);
  let t7 = Sb_eval.Experiments.table7 p in
  check_int "table7: three update modes" 3 (List.length t7.Sb_eval.Table.rows);
  let f8 = Sb_eval.Experiments.figure8 p in
  check_bool "figure8 thresholds" true (List.length f8.Sb_eval.Table.rows >= 8)

let test_via_cfg_corpus () =
  let setup =
    {
      (Sb_eval.Experiments.default_setup ~scale:0.003
         ~corpus_kind:Sb_eval.Experiments.Via_cfg ()) with
      Sb_eval.Experiments.configs = [ Config.fs4 ];
      heavy_configs = [ Config.fs4 ];
    }
  in
  let p = Sb_eval.Experiments.prepare setup in
  check_int "single pipeline program" 1
    (List.length (Sb_eval.Experiments.corpus_of p));
  nonempty_table "table3 via cfg" (Sb_eval.Experiments.table3 p)

let test_corpus_of () =
  let p = Lazy.force tiny_prepared in
  check_int "eight programs" 8 (List.length (Sb_eval.Experiments.corpus_of p))

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "eval.table",
      [ tc "render" test_table_render; tc "cell formatting" test_table_cells ] );
    ( "eval.metrics",
      [
        tc "evaluate" test_metrics_evaluate;
        tc "trivial/slowdown" test_metrics_trivial_and_slowdown;
        tc "helpers" test_metrics_helpers;
        tc "unknown heuristic" test_metrics_unknown_heuristic;
      ] );
    ( "eval.experiments",
      [
        tc "all drivers run" test_experiments_all;
        tc "table shapes" test_experiment_table_shapes;
        tc "corpus accessor" test_corpus_of;
        tc "via-cfg corpus" test_via_cfg_corpus;
      ] );
  ]
