(* The anytime branch-and-bound (Sb_sched.Optimal): soundness of the
   optimality certificate, monotonicity of the incumbent under growing
   budgets, agreement with the exhaustive oracle and across domain
   counts, and determinism of node-budgeted parallel runs. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let wct_of = Sb_sched.Schedule.weighted_completion_time

let seed_gen = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100_000)

let config_of_seed seed =
  List.nth Sb_machine.Config.all (seed mod List.length Sb_machine.Config.all)

let superblock_of_seed ?(max_ops = 14) seed =
  let profile =
    {
      Sb_workload.Generator.default_profile with
      name = "opt";
      max_ops;
      blocks_mean = 2.0;
    }
  in
  Sb_workload.Generator.generate
    (Sb_workload.Rng.create (Int64.of_int ((seed * 2654435761) + 29)))
    profile ~index:seed

(* ------------------------- certificate ----------------------------- *)

(* Whatever the budget cuts, the result must be internally consistent:
   the schedule reproduces [wct], the bound never exceeds it, [gap] is
   their difference, and a proof means the gap is closed. *)
let prop_certificate_sound =
  QCheck.Test.make ~name:"certificate: bound <= wct, gap consistent"
    ~count:50 seed_gen (fun seed ->
      let sb = superblock_of_seed ~max_ops:16 seed in
      let config = config_of_seed (seed + 3) in
      let r = Sb_sched.Optimal.schedule ~node_budget:3_000 config sb in
      abs_float (wct_of r.Sb_sched.Optimal.schedule -. r.Sb_sched.Optimal.wct)
      <= 1e-9
      && r.Sb_sched.Optimal.lower_bound <= r.Sb_sched.Optimal.wct +. 1e-9
      && abs_float
           (r.Sb_sched.Optimal.gap
           -. (r.Sb_sched.Optimal.wct -. r.Sb_sched.Optimal.lower_bound))
         <= 1e-9
      && ((not r.Sb_sched.Optimal.proved_optimal)
         || r.Sb_sched.Optimal.gap <= 1e-9)
      && r.Sb_sched.Optimal.steals = 0 (* jobs defaults to 1 *))

(* The certified lower bound really is a bound on the optimum: no
   heuristic — optimal or not — may beat it. *)
let prop_heuristics_above_lower_bound =
  QCheck.Test.make ~name:"every heuristic's WCT >= certified lower bound"
    ~count:30 seed_gen (fun seed ->
      let sb = superblock_of_seed ~max_ops:14 seed in
      let config = config_of_seed (seed + 5) in
      let r = Sb_sched.Optimal.schedule ~node_budget:5_000 config sb in
      List.for_all
        (fun (h : Sb_sched.Registry.heuristic) ->
          r.Sb_sched.Optimal.lower_bound
          <= wct_of (h.run config sb) +. 1e-6)
        Sb_sched.Registry.all)

(* Anytime contract: a bigger budget can only improve the incumbent.
   With one domain the search order is deterministic, so this is exact,
   not statistical. *)
let prop_incumbent_monotone =
  QCheck.Test.make ~name:"incumbent WCT non-increasing in node budget"
    ~count:30 seed_gen (fun seed ->
      let sb = superblock_of_seed ~max_ops:16 seed in
      let config = config_of_seed (seed + 11) in
      let budgets = [ 16; 64; 256; 1024; 4096; 16_384 ] in
      let wcts =
        List.map
          (fun node_budget ->
            (Sb_sched.Optimal.schedule ~node_budget config sb)
              .Sb_sched.Optimal.wct)
          budgets
      in
      let rec monotone = function
        | a :: (b :: _ as rest) -> b <= a +. 1e-9 && monotone rest
        | _ -> true
      in
      monotone wcts)

(* A proof from the anytime search must name the same optimum as the
   old exhaustive oracle run to completion. *)
let prop_proved_matches_exhaustive_oracle =
  QCheck.Test.make ~name:"proved_optimal agrees with the exhaustive oracle"
    ~count:25 seed_gen (fun seed ->
      let sb = superblock_of_seed ~max_ops:11 seed in
      let config = config_of_seed (seed + 7) in
      let r = Sb_sched.Optimal.schedule ~budget_ms:200 config sb in
      if not r.Sb_sched.Optimal.proved_optimal then QCheck.assume_fail ()
      else
        let oracle =
          Sb_sched.Optimal.schedule ~mode:`Exhaustive ~node_budget:2_000_000
            config sb
        in
        oracle.Sb_sched.Optimal.proved_optimal
        && abs_float (oracle.Sb_sched.Optimal.wct -. r.Sb_sched.Optimal.wct)
           <= 1e-9)

(* ------------------------- parallelism ----------------------------- *)

(* The proved optimum must not depend on how subtrees were distributed
   over domains. *)
let test_jobs_agree () =
  List.iter
    (fun seed ->
      let sb = superblock_of_seed ~max_ops:12 seed in
      let config = config_of_seed (seed + 1) in
      let r1 = Sb_sched.Optimal.schedule ~jobs:1 ~node_budget:400_000 config sb in
      let r4 = Sb_sched.Optimal.schedule ~jobs:4 ~node_budget:400_000 config sb in
      check_bool "1-domain run proves" true r1.Sb_sched.Optimal.proved_optimal;
      check_bool "4-domain run proves" true r4.Sb_sched.Optimal.proved_optimal;
      check_bool "identical optimum" true
        (r1.Sb_sched.Optimal.wct = r4.Sb_sched.Optimal.wct);
      check_bool "identical certificate" true
        (r1.Sb_sched.Optimal.lower_bound = r4.Sb_sched.Optimal.lower_bound);
      check_int "no steals on one domain" 0 r1.Sb_sched.Optimal.steals)
    [ 3; 1415; 92653; 58979; 32384 ]

(* Node-budgeted parallel runs are a regression surface for races: with
   no wall clock in the loop, three repeats must agree exactly. *)
let test_parallel_determinism () =
  let sb = superblock_of_seed ~max_ops:14 2718 in
  let config = Sb_machine.Config.gp2 in
  let runs =
    List.init 3 (fun _ ->
        Sb_sched.Optimal.schedule ?budget_ms:None ~jobs:4 ~node_budget:1_000_000
          config sb)
  in
  match runs with
  | r0 :: rest ->
      check_bool "reference run proves" true r0.Sb_sched.Optimal.proved_optimal;
      List.iteri
        (fun i r ->
          let name s = Printf.sprintf "repeat %d: %s" (i + 1) s in
          check_bool (name "wct identical") true
            (r.Sb_sched.Optimal.wct = r0.Sb_sched.Optimal.wct);
          check_bool (name "bound identical") true
            (r.Sb_sched.Optimal.lower_bound = r0.Sb_sched.Optimal.lower_bound);
          check_bool (name "proof identical") true
            (r.Sb_sched.Optimal.proved_optimal
            = r0.Sb_sched.Optimal.proved_optimal);
          check_int (name "length identical")
            r0.Sb_sched.Optimal.schedule.Sb_sched.Schedule.length
            r.Sb_sched.Optimal.schedule.Sb_sched.Schedule.length)
        rest
  | [] -> assert false

(* --------------------- oracle count regression --------------------- *)

(* Table 7's "optimal found" contract at seed scale: the exhaustive
   oracle at its historical 200k-node default proves exactly the same
   blocks it always did, and the budgeted anytime search never proves
   fewer. *)
let test_oracle_count_regression () =
  let sbs =
    (Sb_workload.Corpus.program ~count:10 "gcc").Sb_workload.Corpus.superblocks
  in
  let config = Sb_machine.Config.gp2 in
  let proved f = List.length (List.filter f sbs) in
  let exhaustive =
    proved (fun sb ->
        (Sb_sched.Optimal.schedule ~mode:`Exhaustive config sb)
          .Sb_sched.Optimal.proved_optimal)
  in
  let anytime =
    proved (fun sb ->
        (Sb_sched.Optimal.schedule ~mode:`Anytime ~budget_ms:50 config sb)
          .Sb_sched.Optimal.proved_optimal)
  in
  check_int "exhaustive oracle count unchanged" 9 exhaustive;
  check_bool
    (Printf.sprintf "anytime proves at least as many (%d vs %d)" anytime
       exhaustive)
    true (anytime >= exhaustive)

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "optimal.certificate",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_certificate_sound;
          prop_heuristics_above_lower_bound;
          prop_incumbent_monotone;
          prop_proved_matches_exhaustive_oracle;
        ] );
    ( "optimal.parallel",
      [
        tc "1 vs 4 domains prove the same optimum" test_jobs_agree;
        tc "node-budgeted 4-domain runs are deterministic"
          test_parallel_determinism;
      ] );
    ( "optimal.oracle",
      [ tc "proved counts at seed scale" test_oracle_count_regression ] );
  ]
