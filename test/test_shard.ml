(* The sb_shard subsystem: canonical content digests, the consistent
   hash ring, the Prometheus page merger, the content-addressed result
   cache (LRU, single-flight, journal warm-restart), the worker
   supervisor, and an in-process end-to-end router over two real TCP
   shard servers. *)

open Sb_shard
module Serde = Sb_ir.Serde
module Client = Sb_serve.Client
module Protocol = Sb_serve.Protocol
module Server = Sb_serve.Server

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let tc name f = Alcotest.test_case name `Quick f

let corpus =
  lazy (Sb_workload.Corpus.program ~count:8 "gcc").Sb_workload.Corpus.superblocks

let tmp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "sbshard-test-%d-%s" (Unix.getpid ()) name)

(* First index of [needle] in [haystack], or -1. *)
let find_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then -1
    else if String.sub haystack i nn = needle then i
    else go (i + 1)
  in
  go 0

let contains haystack needle = find_sub haystack needle >= 0

(* ------------------------------ digest ----------------------------- *)

let prop_digest_roundtrip_stable =
  QCheck.Test.make ~name:"digest survives a serde roundtrip" ~count:100
    Test_props.seed_gen (fun seed ->
      let sb = Test_props.superblock_of_seed ~max_ops:40 seed in
      match Serde.parse_string (Serde.superblock_to_string sb) with
      | Ok [ sb' ] -> Serde.digest sb = Serde.digest sb'
      | _ -> false)

let prop_digest_ignores_name_and_edge_order =
  QCheck.Test.make
    ~name:"digest ignores the block name and the edge listing order"
    ~count:100 Test_props.seed_gen (fun seed ->
      let sb = Test_props.superblock_of_seed ~max_ops:40 seed in
      let text = Serde.superblock_to_string sb in
      (* Reverse the edge lines in the serialized text: same graph,
         different listing order.  The parser rebuilds the canonical
         CSR, so the digest must not move. *)
      let lines = String.split_on_char '\n' text in
      let edges, rest =
        List.partition
          (fun l -> String.length l > 5 && String.sub l 0 5 = "edge ")
          lines
      in
      let shuffled =
        (* Edge lines go back in reverse order, just before "end". *)
        let rec weave = function
          | [] -> []
          | "end" :: tl -> List.rev_append edges ("end" :: tl)
          | hd :: tl -> hd :: weave tl
        in
        String.concat "\n" (weave rest)
      in
      (* Rename in the serialized text ("superblock <name> freq=..."):
         the type is private, but the digest must not care either way. *)
      let renamed =
        match String.split_on_char '\n' text with
        | first :: tl -> (
            match String.split_on_char ' ' first with
            | "superblock" :: _ :: rest ->
                String.concat "\n"
                  (String.concat " " ("superblock" :: "other" :: rest) :: tl)
            | _ -> text)
        | [] -> text
      in
      match (Serde.parse_string shuffled, Serde.parse_string renamed) with
      | Ok [ a ], Ok [ b ] ->
          Serde.digest a = Serde.digest sb
          && Serde.digest b = Serde.digest sb
      | _ -> false)

let test_digest_corpus_no_collisions () =
  let sbs =
    (Sb_workload.Corpus.program ~count:60 "gcc").Sb_workload.Corpus.superblocks
  in
  let by_digest = Hashtbl.create 64 in
  List.iter
    (fun sb ->
      let d = Serde.digest sb in
      match Hashtbl.find_opt by_digest d with
      | None -> Hashtbl.add by_digest d sb
      | Some prior ->
          (* Equal digests are only acceptable for structurally
             identical blocks (same canonical form). *)
          check_string "digest collision implies identical canonical form"
            (Serde.canonical prior) (Serde.canonical sb))
    sbs;
  check_bool "several distinct digests" true (Hashtbl.length by_digest > 10)

(* ------------------------------ chash ------------------------------ *)

let random_digests n =
  let rng = Random.State.make [| 0x5eed |] in
  List.init n (fun _ ->
      Digest.to_hex (Digest.string (string_of_int (Random.State.bits rng))))

let test_chash_deterministic_and_in_range () =
  let a = Chash.create ~shards:4 () in
  let b = Chash.create ~shards:4 () in
  List.iter
    (fun key ->
      let s = Chash.lookup a key in
      check_bool "in range" true (s >= 0 && s < 4);
      check_int "independent rings agree" s (Chash.lookup b key))
    (random_digests 500)

let test_chash_balance () =
  let ring = Chash.create ~shards:4 () in
  let counts = Array.make 4 0 in
  let keys = random_digests 2000 in
  List.iter (fun k -> counts.(Chash.lookup ring k) <- counts.(Chash.lookup ring k) + 1) keys;
  Array.iteri
    (fun i c ->
      check_bool
        (Printf.sprintf "shard %d holds >= 10%% of keys (%d)" i c)
        true
        (c >= 200))
    counts

let test_chash_remap_fraction () =
  let three = Chash.create ~shards:3 () in
  let four = Chash.create ~shards:4 () in
  let keys = random_digests 2000 in
  let moved =
    List.length (List.filter (fun k -> Chash.lookup three k <> Chash.lookup four k) keys)
  in
  (* Consistent hashing moves ~1/4 of keys when going 3 -> 4; plain
     modulo would move ~3/4.  Allow slack but stay far from modulo. *)
  check_bool
    (Printf.sprintf "adding a shard moves a bounded fraction (%d/2000)" moved)
    true
    (moved < 1000)

(* ----------------------------- promerge ---------------------------- *)

let test_promerge_sums_and_maxes () =
  let page1 =
    "# HELP sbsched_x_total Things\n# TYPE sbsched_x_total counter\n\
     sbsched_x_total 3\n\
     # TYPE sbsched_lat_us_max gauge\nsbsched_lat_us_max 120\n\
     sbsched_y{shard=\"0\"} 1\n"
  in
  let page2 =
    "# HELP sbsched_x_total Things\n# TYPE sbsched_x_total counter\n\
     sbsched_x_total 4\n\
     # TYPE sbsched_lat_us_max gauge\nsbsched_lat_us_max 80\n\
     sbsched_y{shard=\"1\"} 5\n"
  in
  let merged = Promerge.merge [ page1; page2 ] in
  let has needle =
    check_bool
      (Printf.sprintf "merged page contains %S" needle)
      true (contains merged needle)
  in
  has "sbsched_x_total 7";
  has "sbsched_lat_us_max 120";
  has "sbsched_y{shard=\"0\"} 1";
  has "sbsched_y{shard=\"1\"} 5";
  has "# TYPE sbsched_x_total counter";
  (* Families come out sorted by name. *)
  check_bool "families sorted" true
    (find_sub merged "sbsched_lat_us_max" < find_sub merged "sbsched_x_total")

(* ------------------------------ cache ------------------------------ *)

let test_cache_lru () =
  let c = Cache.create ~capacity:2 () in
  let put k v =
    ignore (Cache.find_or_compute c ~key:k ~compute:(fun () -> (v, true)))
  in
  put "a" 1;
  put "b" 2;
  ignore (Cache.find c "a" : int option);  (* a is now MRU *)
  put "c" 3;  (* evicts b, the LRU *)
  check_bool "b evicted" true (Cache.find c "b" = None);
  check_bool "a kept" true (Cache.find c "a" = Some 1);
  check_bool "c kept" true (Cache.find c "c" = Some 3);
  check_int "one eviction" 1 (Cache.evictions c);
  check_int "size stays bounded" 2 (Cache.length c)

let test_cache_single_flight () =
  let c = Cache.create ~capacity:8 () in
  let computes = Atomic.make 0 in
  let compute () =
    Atomic.incr computes;
    Thread.delay 0.2;
    ("value", true)
  in
  let outcomes = Array.make 2 Cache.Miss in
  let worker i =
    Thread.create
      (fun () ->
        if i = 1 then Thread.delay 0.05;
        let v, o = Cache.find_or_compute c ~key:"k" ~compute in
        check_string "shared value" "value" v;
        outcomes.(i) <- o)
      ()
  in
  let t0 = worker 0 and t1 = worker 1 in
  Thread.join t0;
  Thread.join t1;
  check_int "computed exactly once" 1 (Atomic.get computes);
  check_bool "first was the miss" true (outcomes.(0) = Cache.Miss);
  check_bool "second waited (or hit a finished flight)" true
    (outcomes.(1) = Cache.Waited || outcomes.(1) = Cache.Hit)

let test_cache_unstorable () =
  let c = Cache.create ~capacity:8 () in
  let v, o = Cache.find_or_compute c ~key:"k" ~compute:(fun () -> (1, false)) in
  check_int "value returned" 1 v;
  check_bool "miss" true (o = Cache.Miss);
  check_bool "not stored" true (Cache.find c "k" = None);
  let _, o2 = Cache.find_or_compute c ~key:"k" ~compute:(fun () -> (2, false)) in
  check_bool "recomputed" true (o2 = Cache.Miss)

let spec path =
  {
    Cache.journal_path = path;
    resume = true;
    meta = [ ("machine", "FS4"); ("tw", "false") ];
    encode = Fun.id;
    decode = Option.some;
  }

let test_cache_warm_restart () =
  let path = tmp_path "warm.journal" in
  if Sys.file_exists path then Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let c1 = Cache.create ~journal:(spec path) ~capacity:3 () in
      for i = 1 to 5 do
        ignore
          (Cache.find_or_compute c1
             ~key:(Printf.sprintf "k%d" i)
             ~compute:(fun () -> (Printf.sprintf "v%d" i, true)))
      done;
      (* No close: a kill -9 loses nothing because every append was
         fsync'd before the insert became visible. *)
      let c2 = Cache.create ~journal:(spec path) ~capacity:3 () in
      check_int "capacity bounds the warm set" 3 (Cache.length c2);
      (* Oldest-first replay leaves the freshest keys resident. *)
      check_bool "freshest survive" true
        (Cache.find c2 "k5" = Some "v5"
        && Cache.find c2 "k4" = Some "v4"
        && Cache.find c2 "k3" = Some "v3");
      check_bool "oldest fell off" true (Cache.find c2 "k1" = None);
      (* A warmed key answers without recomputation. *)
      let v, o =
        Cache.find_or_compute c2 ~key:"k5" ~compute:(fun () ->
            Alcotest.fail "should not recompute a journaled key")
      in
      check_string "bit-identical value" "v5" v;
      check_bool "hit" true (o = Cache.Hit);
      Cache.close c2;
      Cache.close c1)

let test_cache_journal_validation () =
  let path = tmp_path "meta.journal" in
  if Sys.file_exists path then Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let c = Cache.create ~journal:(spec path) ~capacity:4 () in
      ignore (Cache.find_or_compute c ~key:"k" ~compute:(fun () -> ("v", true)));
      Cache.close c;
      (* Another fingerprint must refuse the file. *)
      (match
         Cache.create
           ~journal:{ (spec path) with Cache.meta = [ ("machine", "GP2") ] }
           ~capacity:4 ()
       with
      | exception Failure msg ->
          check_bool "names the mismatch" true
            (contains msg "different experiment")
      | _ -> Alcotest.fail "meta mismatch accepted");
      (* resume=false refuses to clobber. *)
      (match
         Cache.create
           ~journal:{ (spec path) with Cache.resume = false }
           ~capacity:4 ()
       with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "resume=false clobbered an existing journal");
      (* A torn final line (killed mid-append) is tolerated. *)
      let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
      let torn = Bytes.of_string "rec\ttorn-key" in
      ignore (Unix.write fd torn 0 (Bytes.length torn) : int);
      Unix.close fd;
      let c2 = Cache.create ~journal:(spec path) ~capacity:4 () in
      check_bool "intact record survives" true (Cache.find c2 "k" = Some "v");
      check_bool "torn record dropped" true (Cache.find c2 "torn-key" = None);
      Cache.close c2)

(* ---------------------------- supervise ----------------------------- *)

let test_supervise_respawns () =
  let spawn _slot =
    Unix.create_process "sleep" [| "sleep"; "30" |] Unix.stdin Unix.stdout
      Unix.stderr
  in
  let sup = Supervise.start ~backoff:(0.02, 1.0) ~n:1 ~spawn () in
  let pid0 = (Supervise.pids sup).(0) in
  Unix.kill pid0 Sys.sigkill;
  let deadline = Unix.gettimeofday () +. 5. in
  while Supervise.respawns sup < 1 && Unix.gettimeofday () < deadline do
    Thread.delay 0.02
  done;
  check_int "respawned after kill -9" 1 (Supervise.respawns sup);
  check_bool "new pid" true ((Supervise.pids sup).(0) <> pid0);
  check_int "alive again" 1 (Supervise.alive sup);
  Supervise.stop sup;
  (* stop is terminal: the worker was SIGTERMed and reaped. *)
  check_int "no respawn after stop" 1 (Supervise.respawns sup)

(* --------------------------- router e2e ----------------------------- *)

(* In-process glue identical to the CLI's: a Cache behind the server's
   cache hook. *)
let cache_hook () =
  let cache = Cache.create ~capacity:256 () in
  {
    Server.cached_compute =
      (fun ~key ~compute ->
        let v, o = Cache.find_or_compute cache ~key ~compute in
        ( v,
          match o with
          | Cache.Hit -> Server.Cache_hit
          | Cache.Miss -> Server.Cache_miss
          | Cache.Waited -> Server.Cache_waited ));
  }

let start_shard_server ?before_batch () =
  let config =
    {
      Server.default_config with
      cache = Some (cache_hook ());
      before_batch;
    }
  in
  let server = Server.create ~config () in
  let port = Atomic.make 0 in
  let listener =
    Thread.create
      (fun () ->
        Server.listen_tcp server ~host:"127.0.0.1" ~port:0
          ~on_listen:(Atomic.set port))
      ()
  in
  let deadline = Unix.gettimeofday () +. 5. in
  while Atomic.get port = 0 && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  check_bool "shard server bound" true (Atomic.get port <> 0);
  (server, listener, Atomic.get port)

let start_router ?config targets ~inflight_limit =
  let config =
    match config with
    | Some c -> c
    | None ->
        {
          Router.default_config with
          Router.shards = targets;
          inflight_limit;
          read_timeout_s = Some 10.;
        }
  in
  let router = Router.create ~config () in
  let port = Atomic.make 0 in
  let listener =
    Thread.create
      (fun () ->
        Router.listen_tcp router ~host:"127.0.0.1" ~port:0
          ~on_listen:(Atomic.set port))
      ()
  in
  let deadline = Unix.gettimeofday () +. 5. in
  while Atomic.get port = 0 && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  check_bool "router bound" true (Atomic.get port <> 0);
  (router, listener, Atomic.get port)

let sched_result = function
  | Ok (Protocol.Ok_schedule { result; _ }) -> result
  | Ok r -> Alcotest.failf "unexpected reply: %s" (Protocol.render_reply r)
  | Error m -> Alcotest.failf "request failed: %s" m

let stop_server (server, listener, _port) =
  Server.begin_drain server;
  Server.await server;
  Thread.join listener

let test_router_e2e () =
  let shard0 = start_shard_server () in
  let shard1 = start_shard_server () in
  let _, _, port0 = shard0 and _, _, port1 = shard1 in
  let targets =
    [|
      Client.Tcp ("127.0.0.1", port0);
      Client.Tcp ("127.0.0.1", port1);
    |]
  in
  (* Hedging off: this test asserts strict cache affinity (the
     non-owner never sees a key), which a hedge would deliberately
     violate on a slow first compute. *)
  let router, rlistener, rport =
    start_router targets ~inflight_limit:16
      ~config:
        {
          Router.default_config with
          Router.shards = targets;
          inflight_limit = 16;
          read_timeout_s = Some 10.;
          hedge = { Router.default_config.Router.hedge with enabled = false };
        }
  in
  let shard_port i = if i = 0 then port0 else port1 in
  let via port sb =
    let c = Client.connect ~path:(Printf.sprintf "127.0.0.1:%d" port) () in
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () ->
        sched_result
          (Client.schedule c ~id:"t" ~heuristic:"balance" ~bounds:true sb))
  in
  List.iteri
    (fun i sb ->
      ignore i;
      let owner = Router.shard_for router (Serde.digest sb) in
      let routed = via rport sb in
      (* First routed request computes on the owning shard... *)
      check_bool "first pass is a miss" true
        (routed.Protocol.cached = Some false);
      (* ...so a direct request to the owner hits its cache with a
         bit-identical result, proving both the routing and the WCT. *)
      let direct_owner = via (shard_port owner) sb in
      check_bool "owner has it cached" true
        (direct_owner.Protocol.cached = Some true);
      check_bool "wct bit-identical" true
        (direct_owner.Protocol.wct = routed.Protocol.wct);
      check_int "length identical" routed.Protocol.length
        direct_owner.Protocol.length;
      check_bool "bound bit-identical" true
        (direct_owner.Protocol.bound = routed.Protocol.bound);
      (* The non-owner never saw it. *)
      let direct_other = via (shard_port (1 - owner)) sb in
      check_bool "other shard computes fresh" true
        (direct_other.Protocol.cached = Some false);
      check_bool "shards agree on the schedule" true
        (direct_other.Protocol.wct = routed.Protocol.wct);
      (* Second routed pass hits. *)
      let again = via rport sb in
      check_bool "second pass is a hit" true
        (again.Protocol.cached = Some true);
      check_bool "hit is bit-identical" true
        (again.Protocol.wct = routed.Protocol.wct
        && again.Protocol.length = routed.Protocol.length
        && again.Protocol.bound = routed.Protocol.bound))
    (Lazy.force corpus);
  (* Aggregated metrics: router families plus the shards' serve
     families on one page. *)
  let c = Client.connect ~path:(Printf.sprintf "127.0.0.1:%d" rport) () in
  Client.send_metrics c ~id:"m";
  (match Client.read_reply c with
  | Ok (Protocol.Ok_metrics { body; _ }) ->
      let has needle =
        check_bool
          (Printf.sprintf "metrics page has %s" needle)
          true (contains body needle)
      in
      has "sbsched_router_forwarded_total";
      has "sbsched_router_shard_inflight";
      has "sbsched_serve_served_total";
      has "sbsched_cache_hits_total"
  | other ->
      Alcotest.failf "metrics failed: %s"
        (match other with Ok r -> Protocol.render_reply r | Error m -> m));
  Client.send_stats c ~id:"s";
  (match Client.read_reply c with
  | Ok (Protocol.Ok_stats { fields; _ }) ->
      check_string "stats reports shards" "2" (List.assoc "shards" fields);
      check_bool "stats reports forwards" true
        (int_of_string (List.assoc "forwarded" fields) >= 16)
  | _ -> Alcotest.fail "stats failed");
  Client.close c;
  Router.begin_drain router;
  Router.await router;
  Thread.join rlistener;
  stop_server shard0;
  stop_server shard1

let test_router_busy_and_drain () =
  (* A deliberately slow single shard behind a 1-deep router: concurrent
     clients overflow the per-shard in-flight cap and shed busy. *)
  let shard = start_shard_server ~before_batch:(fun () -> Thread.delay 0.3) () in
  let _, _, sport = shard in
  let router, rlistener, rport =
    start_router [| Client.Tcp ("127.0.0.1", sport) |] ~inflight_limit:1
  in
  let sb = List.hd (Lazy.force corpus) in
  let outcomes = Array.make 5 `None in
  let fire i =
    Thread.create
      (fun () ->
        let c = Client.connect ~path:(Printf.sprintf "127.0.0.1:%d" rport) () in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            match Client.schedule c ~id:(string_of_int i) sb with
            | Ok (Protocol.Ok_schedule _) -> outcomes.(i) <- `Ok
            | Ok (Protocol.Error_reply { code = Protocol.Busy; _ }) ->
                outcomes.(i) <- `Busy
            | _ -> outcomes.(i) <- `Other))
      ()
  in
  let threads = List.init 5 fire in
  List.iter Thread.join threads;
  let count what = Array.to_list outcomes |> List.filter (( = ) what) |> List.length in
  check_bool "someone was served" true (count `Ok >= 1);
  check_bool "someone was shed busy" true (count `Busy >= 1);
  check_int "nothing fell through" 0 (count `Other + count `None);
  (* Drain: an open connection's next request is refused with
     shutdown.  Ping first — connect() returns once the handshake is
     in the listen backlog, and draining tears the backlog down with a
     reset; a served reply proves the router accepted us. *)
  let c = Client.connect ~path:(Printf.sprintf "127.0.0.1:%d" rport) () in
  (Client.send_ping c ~id:"pre";
   match Client.read_reply c with
   | Ok _ -> ()
   | Error m -> Alcotest.failf "ping before drain failed: %s" m);
  Router.begin_drain router;
  (match Client.schedule c ~id:"late" sb with
  | Ok (Protocol.Error_reply { code = Protocol.Shutdown; _ }) -> ()
  | Ok r -> Alcotest.failf "expected shutdown, got %s" (Protocol.render_reply r)
  | Error m -> Alcotest.failf "expected shutdown, got transport error %s" m);
  Client.close c;
  Router.await router;
  Thread.join rlistener;
  stop_server shard

let suites =
  [
    ( "shard.digest",
      List.map QCheck_alcotest.to_alcotest
        [ prop_digest_roundtrip_stable; prop_digest_ignores_name_and_edge_order ]
      @ [ tc "corpus digests collision-free" test_digest_corpus_no_collisions ]
    );
    ( "shard.chash",
      [
        tc "deterministic and in range" test_chash_deterministic_and_in_range;
        tc "load is balanced" test_chash_balance;
        tc "adding a shard moves few keys" test_chash_remap_fraction;
      ] );
    ("shard.promerge", [ tc "sums, maxes, sorts" test_promerge_sums_and_maxes ]);
    ( "shard.cache",
      [
        tc "LRU evicts the coldest" test_cache_lru;
        tc "single-flight computes once" test_cache_single_flight;
        tc "unstorable results are not cached" test_cache_unstorable;
        tc "warm restart answers from the journal" test_cache_warm_restart;
        tc "journal fingerprint and torn-tail handling"
          test_cache_journal_validation;
      ] );
    ("shard.supervise", [ tc "respawns a kill -9ed worker" test_supervise_respawns ]);
    ( "shard.router",
      [
        tc "routes by content, caches per shard, aggregates metrics"
          test_router_e2e;
        tc "sheds busy at the in-flight cap; drains clean"
          test_router_busy_and_drain;
      ] );
  ]
