(* Robustness machinery: deterministic fault injection, the cooperative
   watchdog, pool supervision (worker death and respawn), quarantining
   supervised evaluation, and the crash-resumable checkpoint journal. *)

open Sb_machine
module Fault = Sb_fault.Fault
module Watchdog = Sb_fault.Watchdog

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let () = Printexc.record_backtrace true

let plan s =
  match Fault.parse s with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse %S failed: %s" s e

(* Every test that installs a plan clears it on the way out — the
   global is process-wide and alcotest runs cases sequentially. *)
let with_plan s f =
  Fault.install (plan s);
  Fun.protect ~finally:Fault.clear f

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Fault plans: parsing, determinism, counters                         *)
(* ------------------------------------------------------------------ *)

let test_plan_parse () =
  let p =
    plan "parpool.worker:raise@0.01,serve.write:epipe@0.05,eval.item:5ms@0.02,seed=7"
  in
  check_int "seed" 7 p.Fault.seed;
  check_int "rules" 3 (List.length p.Fault.rules);
  (match p.Fault.rules with
  | [ r1; r2; r3 ] ->
      check_string "point 1" "parpool.worker" r1.Fault.point;
      check_bool "raise" true (r1.Fault.action = Fault.Raise);
      check_bool "prob 1" true (r1.Fault.prob = 0.01);
      check_bool "epipe" true (r2.Fault.action = Fault.Epipe);
      check_bool "sleep 5ms" true (r3.Fault.action = Fault.Sleep 0.005)
  | _ -> Alcotest.fail "wrong rule count");
  (* to_string is parseable and reproduces the plan. *)
  (match Fault.parse (Fault.to_string p) with
  | Ok p' -> check_bool "to_string roundtrip" true (p = p')
  | Error e -> Alcotest.failf "to_string not parseable: %s" e);
  (* @prob defaults to 1, seed to 0; durations in us and s work. *)
  let q = plan "a:die,b:50us,c:partial@0.5,d:1.5s" in
  check_int "default seed" 0 q.Fault.seed;
  check_bool "default prob" true
    ((List.hd q.Fault.rules).Fault.prob = 1.0);
  check_bool "us duration" true
    ((List.nth q.Fault.rules 1).Fault.action = Fault.Sleep (50. *. 1e-6));
  check_bool "s duration" true
    ((List.nth q.Fault.rules 3).Fault.action = Fault.Sleep 1.5)

let test_plan_parse_errors () =
  List.iter
    (fun s ->
      check_bool (Printf.sprintf "%S rejected" s) true
        (Result.is_error (Fault.parse s)))
    [
      "";
      "noaction";
      "p:wat";
      "p:raise@2";
      "p:raise@-0.5";
      "p:raise@x";
      "p:-5ms";
      ":raise";
      "seed=x";
      "p:raise,p:die";
    ]

let test_decide_deterministic () =
  let draw () =
    with_plan "p:raise@0.5,seed=1" (fun () ->
        List.init 200 (fun _ -> Fault.decide "p" = Fault.Pass))
  in
  let a = draw () in
  let b = draw () in
  check_bool "same seed, same decision stream" true (a = b);
  let c =
    with_plan "p:raise@0.5,seed=2" (fun () ->
        List.init 200 (fun _ -> Fault.decide "p" = Fault.Pass))
  in
  check_bool "different seed, different stream" true (a <> c);
  check_bool "roughly half fire" true
    (let fired = List.length (List.filter not a) in
     fired > 50 && fired < 150)

let test_decide_inactive_and_unmatched () =
  Fault.clear ();
  check_bool "inactive" false (Fault.active ());
  check_bool "inactive decide is Pass" true (Fault.decide "p" = Fault.Pass);
  check_bool "inactive fired empty" true (Fault.fired () = []);
  with_plan "p:raise@1,seed=0" (fun () ->
      check_bool "active" true (Fault.active ());
      check_bool "unmatched point is Pass" true
        (Fault.decide "other" = Fault.Pass);
      check_bool "unmatched leaves no hits" true (Fault.fired () = []))

let test_fired_counts () =
  with_plan "p:raise@1,q:die@0,seed=0" (fun () ->
      for _ = 1 to 5 do
        ignore (Fault.decide "p")
      done;
      for _ = 1 to 9 do
        ignore (Fault.decide "q")
      done;
      Alcotest.(check (list (pair string int)))
        "only firing points counted" [ ("p", 5) ] (Fault.fired ()));
  (* install resets the counters *)
  with_plan "p:raise@1,seed=0" (fun () ->
      check_bool "counters reset on install" true (Fault.fired () = []))

let test_point_effects () =
  with_plan "p:raise@1,seed=0" (fun () ->
      Alcotest.check_raises "raise" (Fault.Injected "p") (fun () ->
          Fault.point "p"));
  with_plan "p:die@1,seed=0" (fun () ->
      Alcotest.check_raises "die" (Fault.Worker_death "p") (fun () ->
          Fault.point "p"));
  with_plan "p:epipe@1,seed=0" (fun () ->
      Alcotest.check_raises "epipe at a generic point" (Fault.Injected "p")
        (fun () -> Fault.point "p"));
  with_plan "p:1ms@1,seed=0" (fun () -> Fault.point "p" (* returns *));
  Fault.clear ();
  Fault.point "p" (* inactive: no-op *)

let test_install_from_env () =
  Unix.putenv "SBSCHED_FAULT" "p:raise@1,seed=3";
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "SBSCHED_FAULT" "";
      Fault.clear ())
    (fun () ->
      check_bool "well-formed env installs" true
        (Fault.install_from_env () = Ok ());
      check_bool "plan active" true (Fault.active ());
      Unix.putenv "SBSCHED_FAULT" "p:wat";
      check_bool "malformed env errors" true
        (Result.is_error (Fault.install_from_env ())))

(* ------------------------------------------------------------------ *)
(* Watchdog                                                            *)
(* ------------------------------------------------------------------ *)

let test_watchdog_basic () =
  Watchdog.check "free" (* unarmed: no-op *);
  check_bool "unarmed remaining" true (Watchdog.remaining () = None);
  Alcotest.check_raises "expired deadline" (Watchdog.Timed_out "x") (fun () ->
      Watchdog.with_deadline ~seconds:(-1.) (fun () -> Watchdog.check "x"));
  check_bool "deadline restored after raise" true
    (Watchdog.remaining () = None);
  let r =
    Watchdog.with_deadline ~seconds:60. (fun () ->
        Watchdog.check "fine";
        Watchdog.remaining ())
  in
  check_bool "armed remaining positive" true
    (match r with Some s -> s > 0. && s <= 60. | None -> false)

let test_watchdog_nesting () =
  Watchdog.with_deadline ~seconds:60. (fun () ->
      (* The tighter inner deadline wins while it is armed... *)
      (try
         Watchdog.with_deadline ~seconds:(-1.) (fun () ->
             Watchdog.check "inner";
             Alcotest.fail "inner deadline did not fire")
       with Watchdog.Timed_out "inner" -> ());
      (* ...and the outer one is restored afterwards. *)
      Watchdog.check "outer";
      (* An inner deadline cannot loosen an expired outer one. *)
      Alcotest.check_raises "outer wins" (Watchdog.Timed_out "still")
        (fun () ->
          Watchdog.with_deadline ~seconds:(-1.) (fun () ->
              ignore
                (Watchdog.with_deadline ~seconds:60. (fun () ->
                     Watchdog.check "still")))))

let test_watchdog_best_grid () =
  let sb = Fixtures.fig4 () in
  Alcotest.check_raises "Best polls its grid" (Watchdog.Timed_out "best.grid")
    (fun () ->
      ignore
        (Watchdog.with_deadline ~seconds:(-1.) (fun () ->
             Sb_sched.Registry.best.Sb_sched.Registry.run Config.gp2 sb)))

let test_watchdog_optimal () =
  (* Arm a deadline the incumbent seeding finishes within, on a
     superblock whose exhaustive search outlives it: the expiry is then
     observed by the search's own poll site.  The block is calibrated,
     not fixed — anything a 250 ms anytime run fails to prove keeps an
     exhaustive run busy well past the 0.2 s watchdog. *)
  let candidates =
    List.sort
      (fun a b ->
        compare (Sb_ir.Superblock.n_ops b) (Sb_ir.Superblock.n_ops a))
      (Sb_workload.Corpus.program ~count:24 "gcc").Sb_workload.Corpus
        .superblocks
  in
  let sb =
    match
      List.find_opt
        (fun sb ->
          not
            (Sb_sched.Optimal.schedule ~budget_ms:250 Config.gp2 sb)
              .Sb_sched.Optimal.proved_optimal)
        candidates
    with
    | Some sb -> sb
    | None -> Alcotest.fail "every candidate block proves within the probe"
  in
  Alcotest.check_raises "Optimal polls its search"
    (Watchdog.Timed_out "optimal.node") (fun () ->
      ignore
        (Watchdog.with_deadline ~seconds:0.2 (fun () ->
             Sb_sched.Optimal.schedule ~mode:`Exhaustive ~node_budget:max_int
               Config.gp2 sb)))

(* ------------------------------------------------------------------ *)
(* Parpool supervision: worker death, completion, respawn              *)
(* ------------------------------------------------------------------ *)

let test_parpool_survives_worker_death () =
  let xs = List.init 200 Fun.id in
  Sb_eval.Parpool.with_pool ~jobs:4 (fun pool ->
      with_plan "parpool.worker:die@1,seed=0" (fun () ->
          (* Every spawned worker dies on its first chunk claim; the
             caller (never injectable) finishes the whole batch. *)
          Alcotest.(check (list int))
            "batch completes on the caller" (List.map succ xs)
            (Sb_eval.Parpool.map pool succ xs));
      check_int "dead workers not yet replaced" 0
        (Sb_eval.Parpool.respawned pool);
      (* Plan cleared: the next map respawns the dead workers first. *)
      Alcotest.(check (list int))
        "pool healthy again"
        (List.map (fun x -> x * 2) xs)
        (Sb_eval.Parpool.map pool (fun x -> x * 2) xs);
      check_int "all three workers respawned" 3
        (Sb_eval.Parpool.respawned pool))

(* ------------------------------------------------------------------ *)
(* Supervised evaluation: quarantine and timeouts                      *)
(* ------------------------------------------------------------------ *)

let corpus = lazy (Fixtures.random_superblocks ~n:6 ~seed:0xFA17L ())

let test_supervised_quarantines_poison () =
  let sbs = Lazy.force corpus in
  let target = (List.nth sbs 3).Sb_ir.Superblock.name in
  let cp = Sb_sched.Registry.cp in
  let poison =
    {
      Sb_sched.Registry.name = "poison";
      short = "PX";
      run =
        (fun config sb ->
          if sb.Sb_ir.Superblock.name = target then failwith "poison pill"
          else cp.Sb_sched.Registry.run config sb);
    }
  in
  List.iter
    (fun jobs ->
      let recs, fails =
        Sb_eval.Metrics.evaluate_supervised ~heuristics:[ cp; poison ]
          ~with_tw:false ~jobs Config.fs4 sbs
      in
      check_int "one quarantined" 1 (List.length fails);
      let f = List.hd fails in
      check_int "failure index" 3 f.Sb_eval.Metrics.index;
      check_string "failure superblock" target f.Sb_eval.Metrics.sb_name;
      check_string "failure stage" "poison" f.Sb_eval.Metrics.stage;
      check_bool "exception captured" true
        (contains f.Sb_eval.Metrics.exn "poison pill");
      check_bool "not a timeout" false f.Sb_eval.Metrics.timed_out;
      check_bool "backtrace captured" true
        (String.length f.Sb_eval.Metrics.backtrace > 0);
      (* The rest of the corpus completed, in order. *)
      Alcotest.(check (list string))
        "surviving records in corpus order"
        (List.filter_map
           (fun sb ->
             let n = sb.Sb_ir.Superblock.name in
             if n = target then None else Some n)
           sbs)
        (List.map
           (fun (r : Sb_eval.Metrics.record) -> r.Sb_eval.Metrics.sb.Sb_ir.Superblock.name)
           recs))
    [ 1; 3 ]

let test_supervised_fault_point () =
  let sbs = Lazy.force corpus in
  with_plan "eval.item:raise@1,seed=0" (fun () ->
      let recs, fails =
        Sb_eval.Metrics.evaluate_supervised
          ~heuristics:[ Sb_sched.Registry.cp ] ~with_tw:false Config.fs4 sbs
      in
      check_int "all quarantined" (List.length sbs) (List.length fails);
      check_int "no records" 0 (List.length recs);
      List.iteri
        (fun i f ->
          check_int "index order" i f.Sb_eval.Metrics.index;
          check_bool "injected exn" true
            (contains f.Sb_eval.Metrics.exn "eval.item"))
        fails)

let test_supervised_timeout () =
  let sbs = Lazy.force corpus in
  let recs, fails =
    Sb_eval.Metrics.evaluate_supervised ~heuristics:[ Sb_sched.Registry.cp ]
      ~with_tw:false ~timeout_s:(-1.) Config.fs4 sbs
  in
  check_int "all timed out" (List.length sbs) (List.length fails);
  check_int "no records" 0 (List.length recs);
  List.iter
    (fun f ->
      check_bool "flagged as timeout" true f.Sb_eval.Metrics.timed_out;
      check_string "stage is the running heuristic"
        Sb_sched.Registry.cp.Sb_sched.Registry.name f.Sb_eval.Metrics.stage)
    fails

let test_supervised_matches_evaluate () =
  (* With nothing injected, supervised evaluation is plain evaluation. *)
  let sbs = Lazy.force corpus in
  let plain = Sb_eval.Metrics.evaluate ~with_tw:false Config.fs4 sbs in
  let recs, fails =
    Sb_eval.Metrics.evaluate_supervised ~with_tw:false Config.fs4 sbs
  in
  check_int "no failures" 0 (List.length fails);
  List.iter2
    (fun (a : Sb_eval.Metrics.record) (b : Sb_eval.Metrics.record) ->
      Alcotest.(check (list (pair string (float 0.))))
        "identical wct" a.Sb_eval.Metrics.wct b.Sb_eval.Metrics.wct)
    plain recs

(* ------------------------------------------------------------------ *)
(* Checkpoint journal                                                  *)
(* ------------------------------------------------------------------ *)

let tmp_journal () =
  let path = Filename.temp_file "sbckpt_test" ".journal" in
  Sys.remove path;
  path

let meta = [ ("corpus", "t"); ("count", "2") ]

let e1 =
  {
    Sb_eval.Checkpoint.config = "FS4";
    index = 0;
    sb_name = "sb0";
    cp = 1. /. 3.;
    hu = 0.1;
    rj = 4.000000000000001;
    lc = 7.;
    pw = 1e-300;
    tw = None;
    tightest = 7.;
    wct = [ ("CP", 0.30000000000000004); ("G*", 5.5) ];
  }

let e2 =
  {
    e1 with
    Sb_eval.Checkpoint.index = 1;
    sb_name = "sb1";
    tw = Some 2.25;
    wct = [ ("CP", Float.pi) ];
  }

let with_journal f =
  let path = tmp_journal () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_checkpoint_roundtrip () =
  with_journal (fun path ->
      let t, prev = Sb_eval.Checkpoint.start ~path ~resume:false ~meta in
      check_int "fresh start is empty" 0 (List.length prev);
      Sb_eval.Checkpoint.append t e1;
      Sb_eval.Checkpoint.append t e2;
      Sb_eval.Checkpoint.close t;
      let t2, loaded = Sb_eval.Checkpoint.start ~path ~resume:true ~meta in
      Sb_eval.Checkpoint.close t2;
      check_bool "entries round-trip bit-exactly" true (loaded = [ e1; e2 ]))

let test_checkpoint_torn_tail () =
  with_journal (fun path ->
      let t, _ = Sb_eval.Checkpoint.start ~path ~resume:false ~meta in
      Sb_eval.Checkpoint.append t e1;
      Sb_eval.Checkpoint.close t;
      (* A kill mid-append leaves a torn final line; loading drops it. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "rec\tFS4\t1\tsb1\t0x1p+0";
      close_out oc;
      let t2, loaded = Sb_eval.Checkpoint.start ~path ~resume:true ~meta in
      Sb_eval.Checkpoint.close t2;
      check_bool "torn tail dropped" true (loaded = [ e1 ]))

let test_checkpoint_corrupt_middle () =
  with_journal (fun path ->
      let t, _ = Sb_eval.Checkpoint.start ~path ~resume:false ~meta in
      Sb_eval.Checkpoint.append t e1;
      Sb_eval.Checkpoint.append t e2;
      Sb_eval.Checkpoint.close t;
      (* Corrupt a line that is *not* the last: that can never come from
         a crash, so the load must refuse the file. *)
      let lines =
        In_channel.with_open_text path In_channel.input_lines
      in
      let mangled =
        List.mapi (fun i l -> if i = 2 then "garbage" else l) lines
      in
      Out_channel.with_open_text path (fun oc ->
          List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) mangled);
      match Sb_eval.Checkpoint.start ~path ~resume:true ~meta with
      | _ -> Alcotest.fail "corrupt journal accepted"
      | exception Failure msg ->
          check_bool "names the corrupt line" true (contains msg "corrupt"))

let test_checkpoint_meta_mismatch () =
  with_journal (fun path ->
      let t, _ = Sb_eval.Checkpoint.start ~path ~resume:false ~meta in
      Sb_eval.Checkpoint.append t e1;
      Sb_eval.Checkpoint.close t;
      (match
         Sb_eval.Checkpoint.start ~path ~resume:true
           ~meta:[ ("corpus", "other"); ("count", "9") ]
       with
      | _ -> Alcotest.fail "mismatched journal accepted"
      | exception Failure msg ->
          check_bool "names the mismatch" true
            (contains msg "different experiment"));
      (* Not a journal at all. *)
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc "something else entirely\n");
      match Sb_eval.Checkpoint.start ~path ~resume:true ~meta with
      | _ -> Alcotest.fail "non-journal accepted"
      | exception Failure msg ->
          check_bool "rejected as non-journal" true
            (contains msg "not a checkpoint"))

let test_checkpoint_clobber_and_missing () =
  with_journal (fun path ->
      let t, _ = Sb_eval.Checkpoint.start ~path ~resume:false ~meta in
      Sb_eval.Checkpoint.close t;
      (* Existing journal without resume: refuse, don't clobber. *)
      (match Sb_eval.Checkpoint.start ~path ~resume:false ~meta with
      | _ -> Alcotest.fail "clobbered an existing journal"
      | exception Failure msg ->
          check_bool "suggests --resume" true (contains msg "resume"));
      (* Missing file under resume degrades to a fresh start. *)
      Sys.remove path;
      let t2, prev = Sb_eval.Checkpoint.start ~path ~resume:true ~meta in
      Sb_eval.Checkpoint.close t2;
      check_int "fresh after missing" 0 (List.length prev))

(* ------------------------------------------------------------------ *)
(* Experiments: kill-and-resume yields byte-identical tables           *)
(* ------------------------------------------------------------------ *)

let test_resume_identical_tables () =
  let setup =
    {
      (Sb_eval.Experiments.default_setup ~scale:0.002 ~with_tw:false ()) with
      Sb_eval.Experiments.configs = [ Config.gp2; Config.fs4 ];
      heavy_configs = [ Config.fs4 ];
    }
  in
  let render p =
    String.concat "\n"
      (List.map
         (fun table -> Sb_eval.Table.render (table p))
         [
           Sb_eval.Experiments.table1;
           Sb_eval.Experiments.table3;
           Sb_eval.Experiments.table4;
           Sb_eval.Experiments.figure8;
         ])
  in
  let reference = render (Sb_eval.Experiments.prepare setup) in
  with_journal (fun path ->
      check_string "checkpointing changes nothing" reference
        (render (Sb_eval.Experiments.prepare ~checkpoint:path setup));
      (* Simulate a kill: truncate the journal to the header plus half
         the records, then resume.  The resumed run replays the journal
         (validating recomputed bounds bit-exactly) and computes only
         the remainder — the tables must come out byte-identical. *)
      let lines = In_channel.with_open_text path In_channel.input_lines in
      let n = List.length lines in
      check_bool "journal has records to lose" true (n > 6);
      let keep = 2 + ((n - 2) / 2) in
      Out_channel.with_open_text path (fun oc ->
          List.iteri
            (fun i l -> if i < keep then Out_channel.output_string oc (l ^ "\n"))
            lines);
      check_string "resume after a kill is byte-identical" reference
        (render
           (Sb_eval.Experiments.prepare ~jobs:2 ~checkpoint:path ~resume:true
              setup));
      (* Resuming a complete journal recomputes nothing and still
         renders the same tables. *)
      check_string "resume of a complete journal" reference
        (render
           (Sb_eval.Experiments.prepare ~checkpoint:path ~resume:true setup));
      (* A journal from a different experiment is refused. *)
      match
        Sb_eval.Experiments.prepare ~checkpoint:path ~resume:true
          { setup with Sb_eval.Experiments.scale = 0.004 }
      with
      | _ -> Alcotest.fail "foreign journal accepted"
      | exception Failure msg ->
          check_bool "fingerprint mismatch reported" true
            (contains msg "different experiment"))

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "fault.plan",
      [
        tc "parse and to_string" test_plan_parse;
        tc "parse errors" test_plan_parse_errors;
        tc "deterministic decisions" test_decide_deterministic;
        tc "inactive and unmatched points" test_decide_inactive_and_unmatched;
        tc "fired counters" test_fired_counts;
        tc "point effects" test_point_effects;
        tc "install from env" test_install_from_env;
      ] );
    ( "fault.watchdog",
      [
        tc "arm, expire, restore" test_watchdog_basic;
        tc "nesting takes the tighter deadline" test_watchdog_nesting;
        tc "Best grid polls" test_watchdog_best_grid;
        tc "Optimal search polls" test_watchdog_optimal;
      ] );
    ( "fault.parpool",
      [ tc "worker death, completion, respawn" test_parpool_survives_worker_death ] );
    ( "fault.supervised",
      [
        tc "poison heuristic quarantined" test_supervised_quarantines_poison;
        tc "eval.item faults quarantined" test_supervised_fault_point;
        tc "watchdog timeout quarantines" test_supervised_timeout;
        tc "no faults: matches evaluate" test_supervised_matches_evaluate;
      ] );
    ( "fault.checkpoint",
      [
        tc "entry round-trip" test_checkpoint_roundtrip;
        tc "torn tail tolerated" test_checkpoint_torn_tail;
        tc "corrupt middle refused" test_checkpoint_corrupt_middle;
        tc "meta mismatch refused" test_checkpoint_meta_mismatch;
        tc "clobber refused, missing resumes fresh"
          test_checkpoint_clobber_and_missing;
      ] );
    ( "fault.resume",
      [ tc "kill-and-resume tables byte-identical" test_resume_identical_tables ]
    );
  ]
