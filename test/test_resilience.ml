(* The failure-handling layer of sb_shard: the per-shard circuit
   breaker, the retry budget, the ring successor walk, the id-rewrite
   byte-identity property, the backend's net.* chaos points, and
   in-process end-to-end failover / hedging / drain-race coverage over
   real servers. *)

open Sb_shard
module Serde = Sb_ir.Serde
module Client = Sb_serve.Client
module Protocol = Sb_serve.Protocol
module Server = Sb_serve.Server
module Fault = Sb_fault.Fault

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let tc name f = Alcotest.test_case name `Quick f

let corpus =
  lazy (Sb_workload.Corpus.program ~count:8 "gcc").Sb_workload.Corpus.superblocks

let tmp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "sbres-test-%d-%s" (Unix.getpid ()) name)

(* ------------------------------ health ----------------------------- *)

let test_health_consecutive_open () =
  let now = ref 0. in
  let cfg =
    {
      Health.default_config with
      Health.fail_open = 3;
      recover = 2;
      probe_interval_s = 0.5;
    }
  in
  let h = Health.create ~config:cfg ~clock:(fun () -> !now) () in
  check_bool "fresh breaker healthy" true (Health.state h = Health.Healthy);
  check_bool "fresh breaker routable" true (Health.routable h);
  Health.on_failure h;
  Health.on_failure h;
  check_bool "two failures degrade" true (Health.state h = Health.Degraded);
  check_bool "degraded still routable" true (Health.routable h);
  Health.on_failure h;
  check_bool "third consecutive failure opens" true
    (Health.state h = Health.Open);
  check_bool "open is not routable" false (Health.routable h);
  (* A straggler reply from before the open is not recovery. *)
  Health.on_success h ~latency_s:0.001;
  check_bool "straggler success ignored while open" true
    (Health.state h = Health.Open);
  (* Probes are paced by the injected clock, one per interval. *)
  check_bool "no probe before the interval" false (Health.probe_due h);
  now := 0.6;
  check_bool "probe due after the interval" true (Health.probe_due h);
  check_bool "only one probe per interval" false (Health.probe_due h);
  Health.on_probe h ~ok:false;
  check_bool "failed probe leaves it open" true (Health.state h = Health.Open);
  now := 1.3;
  check_bool "next interval, next probe" true (Health.probe_due h);
  Health.on_probe h ~ok:true;
  check_bool "probe success half-closes to degraded" true
    (Health.state h = Health.Degraded);
  Health.on_success h ~latency_s:0.001;
  Health.on_success h ~latency_s:0.001;
  check_bool "recover successes close to healthy" true
    (Health.state h = Health.Healthy);
  check_bool "transitions counted" true (Health.transitions h >= 4)

let test_health_rate_open () =
  (* fail_open is out of reach; only the windowed rate can trip it —
     the clause that catches a shard failing heavily but answering just
     often enough to reset any consecutive counter. *)
  let cfg =
    {
      Health.default_config with
      Health.fail_open = 100;
      rate_open = 0.5;
      window = 4;
    }
  in
  let h = Health.create ~config:cfg () in
  Health.on_success h ~latency_s:0.001;
  Health.on_success h ~latency_s:0.001;
  Health.on_failure h;
  check_bool "window not full: no rate trip" true
    (Health.state h <> Health.Open);
  Health.on_failure h;
  check_bool "2/4 failures at full window opens" true
    (Health.state h = Health.Open)

let test_health_quantile () =
  let h = Health.create () in
  check_bool "no samples, no quantile" true (Health.quantile h 0.95 = None);
  for i = 1 to 100 do
    Health.on_success h ~latency_s:(float_of_int i /. 1000.)
  done;
  match Health.quantile h 0.95 with
  | None -> Alcotest.fail "quantile missing after samples"
  | Some q ->
      check_bool "p95 in the upper tail" true (q >= 0.090 && q <= 0.100)

(* ------------------------------ budget ----------------------------- *)

let test_budget_spend_and_earn () =
  let b =
    Budget.create
      ~config:{ Budget.capacity = 5.; earn = 0.5; initial = 2. }
      ()
  in
  check_bool "initial token 1" true (Budget.try_spend b);
  check_bool "initial token 2" true (Budget.try_spend b);
  check_bool "empty bucket denies" false (Budget.try_spend b);
  check_int "denial counted" 1 (Budget.exhausted b);
  check_int "grants counted" 2 (Budget.spent b);
  Budget.earn b;
  check_bool "half a token is not enough" false (Budget.try_spend b);
  Budget.earn b;
  check_bool "a whole earned token spends" true (Budget.try_spend b);
  for _ = 1 to 100 do
    Budget.earn b
  done;
  check_bool "balance capped at capacity" true (Budget.balance b <= 5.)

(* --------------------------- chash successors ----------------------- *)

let test_chash_successors () =
  let shards = 5 in
  let ring = Chash.create ~vnodes:64 ~shards () in
  for k = 0 to 99 do
    let key = Printf.sprintf "key-%d" k in
    let s = Chash.successors ring key in
    check_int "walk covers every shard" shards (Array.length s);
    let seen = Array.make shards false in
    Array.iter
      (fun i ->
        check_bool "shard index in range" true (i >= 0 && i < shards);
        check_bool "no shard repeated" false seen.(i);
        seen.(i) <- true)
      s;
    check_int "element 0 is the owner" (Chash.lookup ring key) s.(0);
    check_bool "walk is deterministic" true (Chash.successors ring key = s)
  done

(* ------------------------- id-rewrite property ---------------------- *)

(* The router's multiplexer swaps token 2 of a wire line out and back.
   Whatever the verb, id and payload bytes are — including no payload
   after the id, and trailing/multiple spaces — the round trip must be
   byte-identical, because schedule replies are compared bit-for-bit
   against direct-connection runs. *)
let prop_split_id_rewrite_roundtrip =
  QCheck.Test.make
    ~name:"backend id rewrite round-trips wire lines byte-identically"
    ~count:500 Test_props.seed_gen (fun seed ->
      let rng = Random.State.make [| seed; 0x51d |] in
      let token () =
        let n = 1 + Random.State.int rng 10 in
        String.init n (fun _ -> Char.chr (33 + Random.State.int rng 94))
      in
      let verb = token () and id = token () in
      let rest =
        match Random.State.int rng 5 with
        | 0 -> ""  (* id at end of line *)
        | 1 -> " "  (* trailing space, empty payload *)
        | 2 -> " " ^ token ()
        | 3 -> " " ^ token () ^ "  " ^ token () ^ " "
        | _ -> Printf.sprintf " %s %s %s" (token ()) (token ()) (token ())
      in
      let line = verb ^ " " ^ id ^ rest in
      match Backend.split_id line with
      | None -> false
      | Some (v, i, r) -> (
          v = verb && i = id && r = rest
          && v ^ " " ^ i ^ r = line
          &&
          (* Rewrite to an internal id and back, as the backend does on
             the way out and the way back in. *)
          let rewritten = v ^ " x42" ^ r in
          match Backend.split_id rewritten with
          | Some (v2, i2, r2) -> i2 = "x42" && v2 ^ " " ^ id ^ r2 = line
          | None -> false))

(* --------------------------- server glue --------------------------- *)

let cache_hook () =
  let cache = Cache.create ~capacity:256 () in
  {
    Server.cached_compute =
      (fun ~key ~compute ->
        let v, o = Cache.find_or_compute cache ~key ~compute in
        ( v,
          match o with
          | Cache.Hit -> Server.Cache_hit
          | Cache.Miss -> Server.Cache_miss
          | Cache.Waited -> Server.Cache_waited ));
  }

let start_shard_server ?before_batch () =
  let config =
    {
      Server.default_config with
      cache = Some (cache_hook ());
      before_batch;
    }
  in
  let server = Server.create ~config () in
  let port = Atomic.make 0 in
  let listener =
    Thread.create
      (fun () ->
        Server.listen_tcp server ~host:"127.0.0.1" ~port:0
          ~on_listen:(Atomic.set port))
      ()
  in
  let deadline = Unix.gettimeofday () +. 5. in
  while Atomic.get port = 0 && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  check_bool "shard server bound" true (Atomic.get port <> 0);
  (server, listener, Atomic.get port)

let stop_server (server, listener, _port) =
  Server.begin_drain server;
  Server.await server;
  Thread.join listener

let start_router config =
  let router = Router.create ~config () in
  let port = Atomic.make 0 in
  let listener =
    Thread.create
      (fun () ->
        Router.listen_tcp router ~host:"127.0.0.1" ~port:0
          ~on_listen:(Atomic.set port))
      ()
  in
  let deadline = Unix.gettimeofday () +. 5. in
  while Atomic.get port = 0 && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  check_bool "router bound" true (Atomic.get port <> 0);
  (router, listener, Atomic.get port)

let stop_router (router, listener, _port) =
  Router.begin_drain router;
  Router.await router;
  Thread.join listener

let sched_result = function
  | Ok (Protocol.Ok_schedule { result; _ }) -> result
  | Ok r -> Alcotest.failf "unexpected reply: %s" (Protocol.render_reply r)
  | Error m -> Alcotest.failf "request failed: %s" m

let via port sb =
  let c = Client.connect ~path:(Printf.sprintf "127.0.0.1:%d" port) () in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      sched_result
        (Client.schedule c ~id:"t" ~heuristic:"balance" ~bounds:true sb))

let stat router key = List.assoc key (Router.stats_fields router)
let stat_int router key = int_of_string (stat router key)

(* --------------------------- backend chaos -------------------------- *)

let test_backend_net_faults () =
  let shard = start_shard_server () in
  let _, _, port = shard in
  let b = Backend.create (Client.Tcp ("127.0.0.1", port)) in
  (* Ping exercises the same dial/write/read paths as a forwarded
     schedule, without needing wire-format plumbing here. *)
  let req () = Backend.request b [ "ping t" ] in
  (* Baseline: the backend works. *)
  (match req () with
  | Ok raw -> check_string "pong comes back with our id" "ok t kind=pong" raw
  | Error m -> Alcotest.failf "baseline request failed: %s" m);
  (* net.connect: the dial is refused.  Sever first so the next request
     must re-dial through the fault point. *)
  Backend.disconnect b ~reason:"test";
  (match Fault.parse "net.connect:raise@1,seed=1" with
  | Ok p -> Fault.install p
  | Error e -> Alcotest.fail e);
  (match req () with
  | Error m ->
      check_bool "connect fault surfaces as connect error" true
        (String.length m >= 13 && String.sub m 0 13 = "shard connect")
  | Ok _ -> Alcotest.fail "net.connect fault did not fire");
  Fault.clear ();
  (* net.read_stall with a severing action: the reply line is read but
     delivery fails the connection, as a torn read would. *)
  (match Fault.parse "net.read_stall:raise@1,seed=2" with
  | Ok p -> Fault.install p
  | Error e -> Alcotest.fail e);
  (match req () with
  | Error m ->
      check_string "read stall severs the conn" "injected net.read_stall" m
  | Ok _ -> Alcotest.fail "net.read_stall fault did not fire");
  Fault.clear ();
  (* net.conn_drop: the established conn is dropped before the write. *)
  (match req () with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "recovery request failed: %s" m);
  (match Fault.parse "net.conn_drop:raise@1,seed=3" with
  | Ok p -> Fault.install p
  | Error e -> Alcotest.fail e);
  (match req () with
  | Error m -> check_string "conn drop fails the call" "injected net.conn_drop" m
  | Ok _ -> Alcotest.fail "net.conn_drop fault did not fire");
  Fault.clear ();
  (* The backend recovers by re-dialing lazily after each fault. *)
  (match req () with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "post-chaos request failed: %s" m);
  check_bool "re-dials counted" true (Backend.reconnects b >= 2);
  Backend.close b;
  stop_server shard

(* ------------------------- failover e2e ----------------------------- *)

let test_router_failover_and_recovery () =
  let live = start_shard_server () in
  let _, _, lport = live in
  (* Shard 0 is a Unix socket nobody listens on: every dial fails, the
     canonical dead-worker shape.  Reviving it later is just starting a
     server on the path. *)
  let dead_path = tmp_path "dead.sock" in
  (try Unix.unlink dead_path with Unix.Unix_error _ -> ());
  let targets =
    [| Client.Unix_path dead_path; Client.Tcp ("127.0.0.1", lport) |]
  in
  let config =
    {
      Router.default_config with
      Router.shards = targets;
      inflight_limit = 16;
      read_timeout_s = Some 10.;
      hedge = { Router.default_config.Router.hedge with enabled = false };
      health =
        {
          Health.default_config with
          Health.fail_open = 2;
          probe_interval_s = 0.05;
        };
    }
  in
  let ((router, _, rport) as r) = start_router config in
  let owned0 =
    List.filter
      (fun sb -> Router.shard_for router (Serde.digest sb) = 0)
      (Lazy.force corpus)
  in
  check_bool "corpus has blocks owned by the dead shard" true (owned0 <> []);
  (* Every request owned by the dead shard fails over to the successor
     and still succeeds, and the fallback's replies are bit-identical
     to a direct run on the live shard. *)
  List.iter
    (fun sb ->
      let routed = via rport sb in
      let routed2 = via rport sb in
      let direct = via lport sb in
      check_bool "fallback cached the failover key" true
        (direct.Protocol.cached = Some true);
      check_bool "same fallback on repeat (deterministic)" true
        (routed2.Protocol.cached = Some true);
      check_bool "failover reply bit-identical to direct" true
        (routed.Protocol.wct = direct.Protocol.wct
        && routed.Protocol.length = direct.Protocol.length
        && routed.Protocol.bound = direct.Protocol.bound))
    owned0;
  check_bool "failovers counted" true
    (stat_int router "failover" >= 2 * List.length owned0);
  check_bool "no request failed" true (stat_int router "forward_errors" = 0);
  (* Enough dial failures opened the circuit; once open, re-routing is
     primary routing, not charged retries. *)
  check_string "dead shard circuit open" "open" (stat router "shard.0.health");
  let retries_when_open = stat_int router "retries" in
  ignore (via rport (List.hd owned0));
  check_int "open-circuit reroute costs no retry" retries_when_open
    (stat_int router "retries");
  check_int "budget never exhausted" 0
    (stat_int router "retry_budget_exhausted");
  (* Revive shard 0; the half-open prober notices within a few probe
     intervals and traffic returns to the owner. *)
  let s0 =
    Server.create
      ~config:{ Server.default_config with cache = Some (cache_hook ()) }
      ()
  in
  let l0 = Thread.create (fun () -> Server.listen_unix s0 ~path:dead_path) () in
  let deadline = Unix.gettimeofday () +. 5. in
  while
    Router.health_state router 0 = Health.Open
    && Unix.gettimeofday () < deadline
  do
    Thread.delay 0.02
  done;
  check_bool "probe closed the circuit" true
    (Router.health_state router 0 <> Health.Open);
  let sb0 = List.hd owned0 in
  let before = via lport sb0 in
  let back_home = via rport sb0 in
  (* The owner's cache is cold, so landing there computes fresh —
     proof the key went home — with the same bytes as ever. *)
  check_bool "recovered owner computes fresh" true
    (back_home.Protocol.cached = Some false);
  check_bool "post-recovery reply bit-identical" true
    (back_home.Protocol.wct = before.Protocol.wct
    && back_home.Protocol.length = before.Protocol.length
    && back_home.Protocol.bound = before.Protocol.bound);
  stop_router r;
  Server.begin_drain s0;
  Server.await s0;
  Thread.join l0;
  stop_server live

(* --------------------------- hedging e2e ---------------------------- *)

let test_router_hedge_beats_stall () =
  (* Shard 0 stalls 400 ms per request; shard 1 is fast.  With a 30 ms
     fixed hedge delay, every slow request gets hedged to the successor
     and the hedge wins — tail control without a single error. *)
  let slow = start_shard_server ~before_batch:(fun () -> Thread.delay 0.4) () in
  let fast = start_shard_server () in
  let _, _, sport = slow and _, _, fport = fast in
  let targets =
    [| Client.Tcp ("127.0.0.1", sport); Client.Tcp ("127.0.0.1", fport) |]
  in
  let config =
    {
      Router.default_config with
      Router.shards = targets;
      inflight_limit = 16;
      read_timeout_s = Some 10.;
      hedge =
        {
          Router.default_config.Router.hedge with
          enabled = true;
          fixed_ms = Some 30;
        };
    }
  in
  let ((router, _, rport) as r) = start_router config in
  let owned0 =
    List.filter
      (fun sb -> Router.shard_for router (Serde.digest sb) = 0)
      (Lazy.force corpus)
  in
  check_bool "corpus has blocks owned by the slow shard" true (owned0 <> []);
  List.iter
    (fun sb ->
      let t0 = Unix.gettimeofday () in
      let routed = via rport sb in
      let dt = Unix.gettimeofday () -. t0 in
      check_bool "hedged request beat the stall" true (dt < 0.35);
      let direct = via fport sb in
      check_bool "hedge ran on the fast successor" true
        (direct.Protocol.cached = Some true);
      check_bool "hedged reply bit-identical" true
        (routed.Protocol.wct = direct.Protocol.wct
        && routed.Protocol.length = direct.Protocol.length
        && routed.Protocol.bound = direct.Protocol.bound))
    owned0;
  check_bool "hedges launched" true
    (stat_int router "hedged" >= List.length owned0);
  check_bool "hedges won" true
    (stat_int router "hedged_wins" >= List.length owned0);
  check_int "no errors under stall" 0 (stat_int router "forward_errors");
  stop_router r;
  stop_server slow;
  stop_server fast

(* ----------------------- drain/hedge race --------------------------- *)

let test_drain_during_hedge_loses_no_replies () =
  (* Both shards are slow and every request hedges, so two shards may
     answer one request while the router begins a SIGTERM-style drain.
     The refcounted close must hold every reply until it is written:
     nothing admitted may be lost, nothing may hang. *)
  let s0 = start_shard_server ~before_batch:(fun () -> Thread.delay 0.2) () in
  let s1 = start_shard_server ~before_batch:(fun () -> Thread.delay 0.2) () in
  let _, _, p0 = s0 and _, _, p1 = s1 in
  let targets =
    [| Client.Tcp ("127.0.0.1", p0); Client.Tcp ("127.0.0.1", p1) |]
  in
  let config =
    {
      Router.default_config with
      Router.shards = targets;
      inflight_limit = 16;
      read_timeout_s = Some 10.;
      hedge =
        {
          Router.default_config.Router.hedge with
          enabled = true;
          fixed_ms = Some 10;
        };
    }
  in
  let ((router, _, rport) as r) = start_router config in
  let sbs = Array.of_list (Lazy.force corpus) in
  let n = 8 in
  let outcomes = Array.make n `None in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () ->
            let c =
              Client.connect ~path:(Printf.sprintf "127.0.0.1:%d" rport) ()
            in
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                match
                  Client.schedule c ~id:(string_of_int i) ~bounds:true
                    sbs.(i mod Array.length sbs)
                with
                | Ok (Protocol.Ok_schedule _) -> outcomes.(i) <- `Ok
                | Ok (Protocol.Error_reply { code = Protocol.Shutdown; _ })
                  -> outcomes.(i) <- `Shutdown
                | Ok _ -> outcomes.(i) <- `Other
                | Error _ -> outcomes.(i) <- `Lost))
          ())
  in
  (* Let the requests get admitted and their hedges launched, then
     drain mid-flight. *)
  Thread.delay 0.08;
  Router.begin_drain router;
  List.iter Thread.join threads;
  let count what =
    Array.to_list outcomes |> List.filter (( = ) what) |> List.length
  in
  check_int "every reply arrived" 0 (count `Lost + count `None + count `Other);
  check_bool "admitted requests completed" true (count `Ok >= 1);
  Router.await router;
  let _, rl, _ = r in
  Thread.join rl;
  stop_server s0;
  stop_server s1

(* ------------------------- supervise crashloop ---------------------- *)

let test_supervise_crashloop () =
  (* A worker that exits immediately: deaths pile up inside the window
     and the slot must flag as crash-looping (respawns pinned at the
     backoff cap) instead of fork-bombing. *)
  let spawn _slot =
    Unix.create_process "true" [| "true" |] Unix.stdin Unix.stdout Unix.stderr
  in
  let sup =
    Supervise.start ~backoff:(0.005, 0.02) ~crashloop_deaths:3
      ~crashloop_window_s:10. ~n:1 ~spawn ()
  in
  let deadline = Unix.gettimeofday () +. 5. in
  while
    (not (Supervise.slot_crashlooping sup 0))
    && Unix.gettimeofday () < deadline
  do
    Thread.delay 0.01
  done;
  check_bool "slot flagged as crash-looping" true
    (Supervise.slot_crashlooping sup 0);
  check_int "one slot crash-looping" 1 (Supervise.crashlooping sup);
  check_bool "still being respawned" true (Supervise.respawns sup >= 2);
  Supervise.stop sup

let suites =
  [
    ( "resilience.health",
      [
        tc "consecutive failures open; probes half-close"
          test_health_consecutive_open;
        tc "windowed error rate opens" test_health_rate_open;
        tc "latency quantile" test_health_quantile;
      ] );
    ( "resilience.budget",
      [ tc "tokens spend, earn and cap" test_budget_spend_and_earn ] );
    ( "resilience.chash",
      [ tc "successor walk deterministic, distinct, complete"
          test_chash_successors ] );
    ( "resilience.backend",
      List.map QCheck_alcotest.to_alcotest [ prop_split_id_rewrite_roundtrip ]
      @ [ tc "net.* chaos points fire and recover" test_backend_net_faults ] );
    ( "resilience.router",
      [
        tc "failover to successor, return on recovery"
          test_router_failover_and_recovery;
        tc "hedge beats a stalled shard" test_router_hedge_beats_stall;
        tc "drain during hedged flight loses no replies"
          test_drain_during_hedge_loses_no_replies;
      ] );
    ( "resilience.supervise",
      [ tc "crash-loop detector" test_supervise_crashloop ] );
  ]
