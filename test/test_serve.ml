(* The sbserve subsystem: wire protocol framing and rendering, the
   bounded queue, the stats counters, and an in-process end-to-end
   server exercising success, malformed-request, deadline-expiry,
   shedding and drain paths over a real Unix domain socket. *)

open Sb_serve

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let wct = Sb_sched.Schedule.weighted_completion_time

let fs4 = Sb_machine.Config.fs4

let corpus =
  lazy (Sb_workload.Corpus.program ~count:6 "gcc").Sb_workload.Corpus.superblocks

(* ----------------------------- protocol ---------------------------- *)

let roundtrip_reply r =
  match Protocol.parse_reply (Protocol.render_reply r) with
  | Ok r' -> r'
  | Error msg -> Alcotest.failf "parse_reply failed: %s" msg

let test_reply_roundtrip () =
  let result =
    {
      Protocol.heuristic_used = "balance";
      machine_used = "FS4";
      wct = 4.6;
      length = 5;
      bound = Some (1. /. 3.);
      degraded = false;
      elapsed_us = 123;
      issue = Some [| 0; 0; 1; 2; 4 |];
      gap = None;
      proved = None;
      cached = None;
      timing = None;
    }
  in
  (match roundtrip_reply (Protocol.Ok_schedule { id = "r1"; result }) with
  | Protocol.Ok_schedule { id; result = r } ->
      check_string "id" "r1" id;
      check_string "heuristic" "balance" r.Protocol.heuristic_used;
      check_string "machine" "FS4" r.Protocol.machine_used;
      check_bool "wct exact" true (r.Protocol.wct = 4.6);
      check_int "length" 5 r.Protocol.length;
      check_bool "bound exact" true (r.Protocol.bound = Some (1. /. 3.));
      check_bool "degraded" false r.Protocol.degraded;
      check_int "elapsed" 123 r.Protocol.elapsed_us;
      check_bool "issue" true (r.Protocol.issue = Some [| 0; 0; 1; 2; 4 |])
  | _ -> Alcotest.fail "wrong reply variant");
  (match
     roundtrip_reply
       (Protocol.Ok_schedule
          {
            id = "r2";
            result =
              { result with Protocol.bound = None; issue = None; degraded = true };
          })
   with
  | Protocol.Ok_schedule { result = r; _ } ->
      check_bool "no bound" true (r.Protocol.bound = None);
      check_bool "no issue" true (r.Protocol.issue = None);
      check_bool "degraded" true r.Protocol.degraded
  | _ -> Alcotest.fail "wrong reply variant");
  (match
     roundtrip_reply
       (Protocol.Ok_schedule
          {
            id = "r3";
            result =
              { result with Protocol.gap = Some 0.125; proved = Some true };
          })
   with
  | Protocol.Ok_schedule { result = r; _ } ->
      check_bool "gap survives" true (r.Protocol.gap = Some 0.125);
      check_bool "proved survives" true (r.Protocol.proved = Some true)
  | _ -> Alcotest.fail "wrong reply variant");
  (match roundtrip_reply (Protocol.Ok_pong { id = "p" }) with
  | Protocol.Ok_pong { id } -> check_string "pong id" "p" id
  | _ -> Alcotest.fail "wrong reply variant");
  (match
     roundtrip_reply
       (Protocol.Ok_stats { id = "s"; fields = [ ("served", "3"); ("queue_depth", "0") ] })
   with
  | Protocol.Ok_stats { id; fields } ->
      check_string "stats id" "s" id;
      check_string "field" "3" (List.assoc "served" fields)
  | _ -> Alcotest.fail "wrong reply variant");
  match
    roundtrip_reply
      (Protocol.Error_reply
         { id = "-"; code = Protocol.Parse; msg = "bad \"quoted\" thing" })
  with
  | Protocol.Error_reply { id; code; msg } ->
      check_string "error id" "-" id;
      check_bool "code" true (code = Protocol.Parse);
      check_string "msg survives quoting" "bad \"quoted\" thing" msg
  | _ -> Alcotest.fail "wrong reply variant"

let test_error_codes () =
  List.iter
    (fun c ->
      match Protocol.error_code_of_string (Protocol.error_code_to_string c) with
      | Some c' -> check_bool "code roundtrip" true (c = c')
      | None -> Alcotest.fail "error_code_of_string failed")
    [ Protocol.Parse; Bad_request; Busy; Shutdown; Internal ];
  check_bool "unknown code" true (Protocol.error_code_of_string "nope" = None)

let feed_lines reader lines =
  List.filter_map (Protocol.Reader.feed reader) lines

let test_reader_frames_schedule () =
  let sb = List.hd (Lazy.force corpus) in
  let body = Sb_ir.Serde.superblock_to_string sb in
  let lines =
    String.split_on_char '\n' (String.trim body)
  in
  let reader = Protocol.Reader.create () in
  let events =
    feed_lines reader
      (("schedule r1 heuristic=balance bounds=true deadline_ms=500" :: lines)
      @ [ "ping p1" ])
  in
  match events with
  | [ Protocol.Reader.Request (Protocol.Schedule { id; options; sb = sb' });
      Protocol.Reader.Request (Protocol.Ping "p1") ] ->
      check_string "id" "r1" id;
      check_string "heuristic" "balance"
        options.Protocol.heuristic.Sb_sched.Registry.name;
      check_bool "bounds" true options.Protocol.with_bounds;
      check_bool "issue off by default" false options.Protocol.with_issue;
      check_bool "deadline" true (options.Protocol.deadline_ms = Some 500);
      check_int "ops survive framing" (Sb_ir.Superblock.n_ops sb)
        (Sb_ir.Superblock.n_ops sb')
  | _ -> Alcotest.failf "unexpected events (%d)" (List.length events)

let test_reader_rejects_bad_header () =
  (* A bad header must not poison the stream: the body is skimmed up to
     its [end] and the next request parses normally. *)
  let reader = Protocol.Reader.create () in
  let events =
    feed_lines reader
      [
        "schedule r9 heuristic=zorp";
        "superblock x freq=1";
        "op 0 br prob=1";
        "end";
        "ping p2";
      ]
  in
  match events with
  | [ Protocol.Reader.Reject { id = "r9"; code = Protocol.Bad_request; _ };
      Protocol.Reader.Request (Protocol.Ping "p2") ] ->
      ()
  | _ -> Alcotest.failf "unexpected events (%d)" (List.length events)

let test_reader_rejects_bad_body () =
  let reader = Protocol.Reader.create () in
  let events =
    feed_lines reader
      [ "schedule r3"; "superblock x freq=1"; "op 0 zorp"; "end"; "stats s9" ]
  in
  match events with
  | [ Protocol.Reader.Reject { id = "r3"; code = Protocol.Parse; msg };
      Protocol.Reader.Request (Protocol.Stats "s9") ] ->
      check_bool "names the line" true
        (String.length msg > 0 && String.lowercase_ascii msg <> msg
        || String.length msg > 0)
  | _ -> Alcotest.failf "unexpected events (%d)" (List.length events)

let test_reader_rejects_unknown_directive () =
  let reader = Protocol.Reader.create () in
  (match feed_lines reader [ "zorp" ] with
  | [ Protocol.Reader.Reject { id = "-"; code = Protocol.Parse; _ } ] -> ()
  | _ -> Alcotest.fail "unknown directive not rejected");
  check_bool "not in flight" false (Protocol.Reader.in_flight reader)

let test_reader_in_flight () =
  let reader = Protocol.Reader.create () in
  ignore (feed_lines reader [ "schedule r4"; "superblock x freq=1" ]);
  check_bool "mid-body" true (Protocol.Reader.in_flight reader)

let test_reader_body_cap () =
  let reader = Protocol.Reader.create ~max_body_lines:4 () in
  let events =
    feed_lines reader
      [
        "schedule big";
        "superblock x freq=1";
        "op 0 add";
        "op 1 add";
        "op 2 add";
        "op 3 br prob=1";
        "end";
      ]
  in
  match events with
  | [ Protocol.Reader.Reject { id = "big"; code = Protocol.Parse; _ } ] -> ()
  | _ -> Alcotest.fail "oversized body not rejected"

(* ------------------------------ queue ------------------------------ *)

let test_queue_shed_and_order () =
  let q = Queue.create ~capacity:2 in
  check_int "capacity" 2 (Queue.capacity q);
  check_bool "accept 1" true (Queue.push q 1 = Queue.Accepted);
  check_bool "accept 2" true (Queue.push q 2 = Queue.Accepted);
  check_bool "shed at capacity" true (Queue.push q 3 = Queue.Rejected);
  check_int "length" 2 (Queue.length q);
  check_bool "batch order" true (Queue.pop_batch ~max:8 q = [ 1; 2 ]);
  check_bool "accepts again after drain" true (Queue.push q 4 = Queue.Accepted);
  check_bool "batch max respected" true (Queue.pop_batch ~max:1 q = [ 4 ])

let test_queue_close () =
  let q = Queue.create ~capacity:4 in
  ignore (Queue.push q 1);
  Queue.close q;
  Queue.close q (* idempotent *);
  check_bool "closed to producers" true (Queue.push q 2 = Queue.Closed);
  check_bool "drains after close" true (Queue.pop_batch ~max:8 q = [ 1 ]);
  check_bool "empty means exit" true (Queue.pop_batch ~max:8 q = []);
  check_bool "is_closed" true (Queue.is_closed q)

let test_queue_blocking_pop () =
  let q = Queue.create ~capacity:4 in
  let got = ref [] in
  let consumer = Thread.create (fun () -> got := Queue.pop_batch ~max:8 q) () in
  Thread.delay 0.05;
  ignore (Queue.push q 42);
  Thread.join consumer;
  check_bool "woken by push" true (!got = [ 42 ])

let test_queue_invalid () =
  match Queue.create ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 accepted"

(* ------------------------------ stats ------------------------------ *)

let test_stats_counters () =
  let s = Stats.create () in
  Stats.connection_opened s;
  Stats.accepted s;
  Stats.accepted s;
  Stats.served s ~heuristic:"balance" ~degraded:false ~latency_us:1000;
  Stats.served s ~heuristic:"critical-path" ~degraded:true ~latency_us:100_000;
  Stats.rejected_busy s;
  Stats.protocol_error s;
  Stats.set_work_snapshot s [ ("cache.hit", 7) ];
  let fields = Stats.snapshot s ~queue_depth:3 in
  let get k = List.assoc k fields in
  check_string "accepted" "2" (get "accepted");
  check_string "served" "2" (get "served");
  check_string "degraded" "1" (get "degraded");
  check_string "rejected_busy" "1" (get "rejected_busy");
  check_string "errors_protocol" "1" (get "errors_protocol");
  check_string "queue_depth" "3" (get "queue_depth");
  check_string "connections" "1" (get "connections");
  check_string "picks" "1" (get "picks.balance");
  check_string "work snapshot" "7" (get "work.cache.hit");
  (* Log2 buckets: the p50 of {1000, 100000} lands in 1000's bucket,
     whose upper edge is 1024; p99 in 100000's, upper edge clamped to
     the observed max. *)
  check_int "p50 bucket edge" 1024 (Stats.percentile_latency_us s 0.50);
  check_int "p99 clamps to max" 100_000 (Stats.percentile_latency_us s 0.99);
  check_int "max exact" 100_000 (Stats.max_latency_us s);
  check_int "mean exact" 50_500 (Stats.mean_latency_us s)

let test_stats_empty () =
  let s = Stats.create () in
  check_int "p95 before data" 0 (Stats.percentile_latency_us s 0.95);
  check_int "mean before data" 0 (Stats.mean_latency_us s)

(* The independent event counters are atomics precisely because reader
   threads and pool worker domains bump them concurrently: hammering
   from both kinds of context must lose no increments. *)
let test_stats_concurrent_counters () =
  let s = Stats.create () in
  let per = 20_000 in
  let hammer () =
    for _ = 1 to per do
      Stats.connection_opened s;
      Stats.connection_closed s;
      Stats.accepted s;
      Stats.rejected_busy s;
      Stats.rejected_shutdown s;
      Stats.protocol_error s;
      Stats.internal_error s;
      Stats.idle_evicted s
    done
  in
  let domains = List.init 3 (fun _ -> Domain.spawn hammer) in
  let threads = List.init 3 (fun _ -> Thread.create hammer ()) in
  hammer ();
  List.iter Thread.join threads;
  List.iter Domain.join domains;
  let total = 7 * per in
  let fields = Stats.snapshot s ~queue_depth:0 in
  let get k = int_of_string (List.assoc k fields) in
  check_int "connections balance to zero" 0 (get "connections");
  check_int "connections_total" total (get "connections_total");
  check_int "accepted" total (get "accepted");
  check_int "rejected_busy" total (get "rejected_busy");
  check_int "rejected_shutdown" total (get "rejected_shutdown");
  check_int "errors_protocol" total (get "errors_protocol");
  check_int "errors_internal" total (get "errors_internal");
  check_int "idle_evicted" total (get "idle_evicted")

(* --------------------------- reader fuzz --------------------------- *)

(* Arbitrary single lines thrown at the framing reader: it must never
   raise, and must never desync — after flushing any partially-read
   body, the next well-formed request still parses. *)
let reader_line_gen =
  let open QCheck.Gen in
  let garbage =
    map
      (fun cs -> String.concat "" (List.map (String.make 1) cs))
      (list_size (int_bound 30)
         (frequency
            [ (6, char_range 'a' 'z'); (2, oneofl [ ' '; '='; ':'; '\t' ]);
              (1, char_range '\000' '\255') ]))
  in
  let body_line =
    lazy
      (String.split_on_char '\n'
         (String.trim
            (Sb_ir.Serde.superblock_to_string (List.hd (Lazy.force corpus)))))
  in
  frequency
    [
      (4, garbage);
      (2, map (fun s -> "schedule " ^ s) garbage);
      (2, map (fun s -> "superblock " ^ s) garbage);
      (2, oneofl [ "ping a"; "stats b"; "schedule s1"; "end"; "" ]);
      (2, (fun st -> List.nth (Lazy.force body_line)
                       (int_bound (List.length (Lazy.force body_line) - 1) st)));
    ]

let prop_reader_never_desyncs =
  QCheck.Test.make ~name:"reader survives garbage and stays in sync"
    ~count:300
    (QCheck.make
       ~print:(fun ls -> String.concat "\\n" ls)
       QCheck.Gen.(list_size (int_bound 40) reader_line_gen))
    (fun lines ->
      let no_newline l = not (String.contains l '\n') in
      QCheck.assume (List.for_all no_newline lines);
      let reader = Protocol.Reader.create () in
      List.iter (fun l -> ignore (Protocol.Reader.feed reader l)) lines;
      (* Terminate any half-read schedule body, then prove the framing
         recovered: a fresh request must parse. *)
      if Protocol.Reader.in_flight reader then
        ignore (Protocol.Reader.feed reader "end");
      match Protocol.Reader.feed reader "ping liveness" with
      | Some (Protocol.Reader.Request (Protocol.Ping "liveness")) -> true
      | _ -> false)

let prop_parse_reply_total =
  QCheck.Test.make ~name:"parse_reply never raises on garbage" ~count:500
    QCheck.(string_of_size (Gen.int_bound 60))
    (fun s ->
      QCheck.assume (not (String.contains s '\n'));
      match Protocol.parse_reply s with Ok _ | Error _ -> true)

(* ---------------------------- end to end --------------------------- *)

let tmp_sock_path () =
  let path = Filename.temp_file "sbserve" ".sock" in
  Sys.remove path;
  path

let with_server config f =
  let server = Server.create ~config () in
  let path = tmp_sock_path () in
  let listener = Thread.create (fun () -> Server.listen_unix server ~path) () in
  let rec wait n =
    if not (Sys.file_exists path) then
      if n = 0 then Alcotest.fail "socket never appeared"
      else begin
        Thread.delay 0.01;
        wait (n - 1)
      end
  in
  wait 500;
  Fun.protect
    ~finally:(fun () ->
      Server.begin_drain server;
      Server.await server;
      Thread.join listener;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f server path)

let quick_config =
  { Server.default_config with jobs = 2; queue_capacity = 32; batch_max = 8 }

let expect_schedule = function
  | Ok (Protocol.Ok_schedule { id; result }) -> (id, result)
  | Ok r -> Alcotest.failf "unexpected reply: %s" (Protocol.render_reply r)
  | Error msg -> Alcotest.failf "client error: %s" msg

(* Concurrent clients must observe exactly the WCT (and bound) a direct
   in-process run produces — the wire adds no noise. *)
let test_e2e_matches_direct () =
  let sbs = Lazy.force corpus in
  let balance =
    match Sb_sched.Registry.by_name "balance" with
    | Some h -> h
    | None -> assert false
  in
  let expected =
    List.map
      (fun sb ->
        let s = balance.Sb_sched.Registry.run fs4 sb in
        let all = Sb_bounds.Superblock_bound.all_bounds ~with_tw:false fs4 sb in
        (wct s, s.Sb_sched.Schedule.length, all.Sb_bounds.Superblock_bound.tightest))
      sbs
  in
  with_server quick_config (fun _server path ->
      let failures = Atomic.make 0 in
      let worker w =
        let t = Client.connect ~path () in
        Fun.protect ~finally:(fun () -> Client.close t) (fun () ->
            List.iteri
              (fun i sb ->
                let exp_wct, exp_len, exp_bound = List.nth expected i in
                let id = Printf.sprintf "w%d-%d" w i in
                let rid, r =
                  expect_schedule
                    (Client.schedule t ~id ~heuristic:"balance" ~bounds:true
                       ~issue:true sb)
                in
                if
                  not
                    (rid = id
                    && r.Protocol.wct = exp_wct
                    && r.Protocol.length = exp_len
                    && r.Protocol.bound = Some exp_bound
                    && r.Protocol.heuristic_used = "balance"
                    && r.Protocol.machine_used = "FS4"
                    && (not r.Protocol.degraded)
                    &&
                    (* The echoed issue cycles must reproduce the WCT. *)
                    match r.Protocol.issue with
                    | None -> false
                    | Some issue ->
                        let lat = Sb_ir.Superblock.branch_latency sb in
                        let w' = ref 0. in
                        for k = 0 to Sb_ir.Superblock.n_branches sb - 1 do
                          w' :=
                            !w'
                            +. Sb_ir.Superblock.weight sb k
                               *. float_of_int
                                    (issue.(Sb_ir.Superblock.branch_op sb k)
                                    + lat)
                        done;
                        !w' = exp_wct)
                then Atomic.incr failures)
              sbs)
      in
      let threads = List.init 4 (fun w -> Thread.create worker w) in
      List.iter Thread.join threads;
      check_int "all concurrent replies match direct runs" 0
        (Atomic.get failures))

let test_e2e_machine_override_and_ping () =
  let sb = List.hd (Lazy.force corpus) in
  let cp =
    match Sb_sched.Registry.by_name "cp" with Some h -> h | None -> assert false
  in
  let gp1 =
    match Sb_machine.Config.by_name "GP1" with
    | Some c -> c
    | None -> assert false
  in
  let exp = wct (cp.Sb_sched.Registry.run gp1 sb) in
  with_server quick_config (fun _server path ->
      let t = Client.connect ~path () in
      Fun.protect ~finally:(fun () -> Client.close t) (fun () ->
          Client.send_ping t ~id:"p1";
          (match Client.read_reply t with
          | Ok (Protocol.Ok_pong { id }) -> check_string "pong" "p1" id
          | _ -> Alcotest.fail "no pong");
          let _, r =
            expect_schedule
              (Client.schedule t ~id:"m1" ~heuristic:"cp" ~machine:"GP1" sb)
          in
          check_string "machine honoured" "GP1" r.Protocol.machine_used;
          check_bool "wct on overridden machine" true (r.Protocol.wct = exp);
          Client.send_stats t ~id:"s1";
          match Client.read_reply t with
          | Ok (Protocol.Ok_stats { id; fields }) ->
              check_string "stats id" "s1" id;
              check_string "served visible over the wire" "1"
                (List.assoc "served" fields)
          | _ -> Alcotest.fail "no stats reply"))

(* A deadline that has already expired when the dispatcher picks the
   request up degrades it: critical-path runs instead, the bound stack
   is skipped, and the reply says so. *)
let test_e2e_deadline_degrades () =
  let sb = List.hd (Lazy.force corpus) in
  let cp_wct =
    match Sb_sched.Registry.by_name "cp" with
    | Some h -> wct (h.Sb_sched.Registry.run fs4 sb)
    | None -> assert false
  in
  let config =
    {
      Server.default_config with
      jobs = 1;
      batch_max = 4;
      before_batch = Some (fun () -> Thread.delay 0.1);
    }
  in
  with_server config (fun _server path ->
      let t = Client.connect ~path () in
      Fun.protect ~finally:(fun () -> Client.close t) (fun () ->
          let _, r =
            expect_schedule
              (Client.schedule t ~id:"d1" ~heuristic:"balance" ~bounds:true
                 ~deadline_ms:5 sb)
          in
          check_bool "degraded" true r.Protocol.degraded;
          check_string "downgraded to critical-path" "critical-path"
            r.Protocol.heuristic_used;
          check_bool "still a valid schedule" true (r.Protocol.wct = cp_wct);
          check_bool "bound stack skipped" true (r.Protocol.bound = None)))

(* An optimal request with a starvation-tight budget must still come
   back as a real schedule with a certified gap — never busy, never
   empty.  [degraded] may or may not be set depending on how fast the
   dispatcher picked it up; the certificate fields must be there
   regardless. *)
let test_e2e_optimal_tight_budget () =
  let sb =
    List.fold_left
      (fun a b ->
        if Sb_ir.Superblock.n_ops b > Sb_ir.Superblock.n_ops a then b else a)
      (List.hd (Lazy.force corpus))
      (Lazy.force corpus)
  in
  with_server quick_config (fun _server path ->
      let t = Client.connect ~path () in
      Fun.protect ~finally:(fun () -> Client.close t) (fun () ->
          let _, r =
            expect_schedule
              (Client.schedule t ~id:"o1" ~heuristic:"optimal" ~bounds:true
                 ~optimal_budget_ms:1 sb)
          in
          check_string "served by optimal" "optimal" r.Protocol.heuristic_used;
          (match (r.Protocol.gap, r.Protocol.proved, r.Protocol.bound) with
          | Some gap, Some proved, Some lb ->
              check_bool "gap nonnegative" true (gap >= 0.);
              check_bool "proved implies gap closed" true
                ((not proved) || gap <= 1e-9);
              check_bool "bound below incumbent" true
                (lb <= r.Protocol.wct +. 1e-9)
          | _ -> Alcotest.fail "certificate fields missing from reply");
          check_bool "incumbent is a real schedule" true (r.Protocol.wct > 0.)))

(* With a generous budget the wire run proves optimality and lands on
   exactly the WCT and bound a direct in-process run produces. *)
let test_e2e_optimal_generous_matches_direct () =
  let sb =
    List.fold_left
      (fun a b ->
        if Sb_ir.Superblock.n_ops b < Sb_ir.Superblock.n_ops a then b else a)
      (List.hd (Lazy.force corpus))
      (Lazy.force corpus)
  in
  let direct = Sb_sched.Optimal.schedule ~mode:`Anytime ~budget_ms:10_000 fs4 sb in
  check_bool "direct run proves (pick a smaller corpus if this fails)" true
    direct.Sb_sched.Optimal.proved_optimal;
  with_server quick_config (fun _server path ->
      let t = Client.connect ~path () in
      Fun.protect ~finally:(fun () -> Client.close t) (fun () ->
          let _, r =
            expect_schedule
              (Client.schedule t ~id:"o2" ~heuristic:"optimal"
                 ~optimal_budget_ms:10_000 sb)
          in
          check_bool "proved over the wire" true (r.Protocol.proved = Some true);
          check_bool "wct bit-identical to direct run" true
            (r.Protocol.wct = direct.Sb_sched.Optimal.wct);
          check_bool "bound bit-identical to direct run" true
            (r.Protocol.bound = Some direct.Sb_sched.Optimal.lower_bound);
          check_bool "gap closed" true (r.Protocol.gap = Some 0.)))

(* With the dispatcher wedged on a slow batch and a capacity-1 queue,
   the third pipelined request must be shed with [busy]. *)
let test_e2e_busy_shed () =
  let sb = List.hd (Lazy.force corpus) in
  let config =
    {
      Server.default_config with
      jobs = 1;
      queue_capacity = 1;
      batch_max = 1;
      before_batch = Some (fun () -> Thread.delay 0.3);
    }
  in
  with_server config (fun server path ->
      let t = Client.connect ~path () in
      Fun.protect ~finally:(fun () -> Client.close t) (fun () ->
          Client.send_schedule t ~id:"b1" ~heuristic:"cp" sb;
          (* Wait until b1 left the queue for its (slow) batch, so b2
             deterministically occupies the single slot. *)
          let rec settle n =
            if n = 0 then Alcotest.fail "b1 never dispatched";
            let fields = Server.stats_fields server in
            if
              List.assoc "accepted" fields <> "1"
              || List.assoc "queue_depth" fields <> "0"
            then begin
              Thread.delay 0.01;
              settle (n - 1)
            end
          in
          settle 500;
          Client.send_schedule t ~id:"b2" ~heuristic:"cp" sb;
          Client.send_schedule t ~id:"b3" ~heuristic:"cp" sb;
          let replies =
            List.init 3 (fun _ ->
                match Client.read_reply t with
                | Ok r -> r
                | Error msg -> Alcotest.failf "client error: %s" msg)
          in
          let ok_ids, busy_ids =
            List.fold_left
              (fun (oks, busys) -> function
                | Protocol.Ok_schedule { id; _ } -> (id :: oks, busys)
                | Protocol.Error_reply { id; code = Protocol.Busy; msg } ->
                    check_bool "busy msg mentions the queue" true
                      (String.length msg > 0);
                    (oks, id :: busys)
                | r ->
                    Alcotest.failf "unexpected reply: %s"
                      (Protocol.render_reply r))
              ([], []) replies
          in
          check_bool "b3 shed" true (busy_ids = [ "b3" ]);
          check_bool "accepted requests still served" true
            (List.sort compare ok_ids = [ "b1"; "b2" ]);
          match List.assoc_opt "rejected_busy" (Server.stats_fields server) with
          | Some n -> check_string "shed counted" "1" n
          | None -> Alcotest.fail "rejected_busy missing from stats"))

(* Drain: everything accepted before [begin_drain] is still answered;
   anything after gets [shutdown]. *)
let test_e2e_drain () =
  let sb = List.hd (Lazy.force corpus) in
  let config =
    {
      Server.default_config with
      jobs = 1;
      queue_capacity = 8;
      batch_max = 1;
      before_batch = Some (fun () -> Thread.delay 0.1);
    }
  in
  with_server config (fun server path ->
      let t = Client.connect ~path () in
      Fun.protect ~finally:(fun () -> Client.close t) (fun () ->
          Client.send_schedule t ~id:"g1" ~heuristic:"cp" sb;
          Client.send_schedule t ~id:"g2" ~heuristic:"cp" sb;
          (* Only drain once both requests are safely accepted. *)
          let rec settle n =
            if n = 0 then Alcotest.fail "requests never accepted";
            if List.assoc "accepted" (Server.stats_fields server) <> "2"
            then begin
              Thread.delay 0.01;
              settle (n - 1)
            end
          in
          settle 500;
          Server.begin_drain server;
          check_bool "draining" true (Server.draining server);
          Client.send_schedule t ~id:"g3" ~heuristic:"cp" sb;
          let replies =
            List.init 3 (fun _ ->
                match Client.read_reply t with
                | Ok r -> r
                | Error msg -> Alcotest.failf "client error: %s" msg)
          in
          let served, shut =
            List.fold_left
              (fun (s, d) -> function
                | Protocol.Ok_schedule { id; _ } -> (id :: s, d)
                | Protocol.Error_reply { id; code = Protocol.Shutdown; _ } ->
                    (s, id :: d)
                | r ->
                    Alcotest.failf "unexpected reply: %s"
                      (Protocol.render_reply r))
              ([], []) replies
          in
          check_bool "no accepted request lost" true
            (List.sort compare served = [ "g1"; "g2" ]);
          check_bool "post-drain refused" true (shut = [ "g3" ])))

(* Malformed requests over the socket get error replies without
   disturbing the surrounding requests. *)
let test_e2e_malformed () =
  let sb = List.hd (Lazy.force corpus) in
  with_server quick_config (fun _server path ->
      let t = Client.connect ~path () in
      Fun.protect ~finally:(fun () -> Client.close t) (fun () ->
          (* Pipelined: good, malformed, good.  Replies are matched by id
             because schedule replies are asynchronous — the inline error
             may overtake them on the wire. *)
          Client.send_schedule t ~id:"ok1" ~heuristic:"cp" sb;
          Client.send_ping t ~id:"zorp-probe";
          Client.send_schedule t ~id:"bad" ~heuristic:"zorp" sb;
          let seen = ref [] in
          for _ = 1 to 3 do
            match Client.read_reply t with
            | Ok (Protocol.Ok_schedule { id; _ }) -> seen := (id, "ok") :: !seen
            | Ok (Protocol.Ok_pong { id }) -> seen := (id, "pong") :: !seen
            | Ok (Protocol.Error_reply { id; code = Protocol.Bad_request; msg })
              ->
                check_bool "error carries a message" true (String.length msg > 0);
                seen := (id, "bad-request") :: !seen
            | Ok r ->
                Alcotest.failf "unexpected reply: %s" (Protocol.render_reply r)
            | Error msg -> Alcotest.failf "client error: %s" msg
          done;
          check_bool "each request answered once, malformed isolated" true
            (List.sort compare !seen
            = [ ("bad", "bad-request"); ("ok1", "ok"); ("zorp-probe", "pong") ])))

(* A pipelined client that half-closes its write side after sending
   must still get every accepted reply: the server defers the
   connection close until the last outstanding reply is sent, rather
   than closing as soon as the reader sees EOF. *)
let test_e2e_half_close () =
  let sb = List.hd (Lazy.force corpus) in
  let config =
    {
      Server.default_config with
      jobs = 1;
      batch_max = 1;
      (* Slow batches so EOF reaches the reader well before any reply. *)
      before_batch = Some (fun () -> Thread.delay 0.1);
    }
  in
  with_server config (fun _server path ->
      let t = Client.connect ~path () in
      Fun.protect ~finally:(fun () -> Client.close t) (fun () ->
          Client.send_schedule t ~id:"h1" ~heuristic:"cp" sb;
          Client.send_schedule t ~id:"h2" ~heuristic:"cp" sb;
          Client.shutdown_send t;
          let ids =
            List.init 2 (fun _ ->
                match Client.read_reply t with
                | Ok (Protocol.Ok_schedule { id; _ }) -> id
                | Ok r ->
                    Alcotest.failf "unexpected reply: %s"
                      (Protocol.render_reply r)
                | Error msg -> Alcotest.failf "client error: %s" msg)
          in
          check_bool "both replies delivered after half-close" true
            (List.sort compare ids = [ "h1"; "h2" ]);
          (* ... and only then does the server close the connection. *)
          match Client.read_reply t with
          | Error _ -> ()
          | Ok r ->
              Alcotest.failf "expected EOF, got: %s" (Protocol.render_reply r)))

(* Socket hygiene: the bound socket is 0600; a path with a live server
   is refused (no silent takeover); a stale socket file is replaced. *)
let test_socket_takeover () =
  with_server quick_config (fun _server path ->
      check_int "socket is private to the owner" 0o600
        (Unix.stat path).Unix.st_perm;
      let second =
        Server.create ~config:{ quick_config with jobs = 1 } ()
      in
      Fun.protect
        ~finally:(fun () ->
          Server.begin_drain second;
          Server.await second)
        (fun () ->
          match Server.listen_unix second ~path with
          | () -> Alcotest.fail "takeover of a live socket not refused"
          | exception Failure _ -> ()));
  (* Stale file: bind-then-close leaves a socket nobody accepts on;
     the next server replaces it. *)
  let path = tmp_sock_path () in
  let dead = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind dead (Unix.ADDR_UNIX path);
  Unix.close dead;
  let server = Server.create ~config:quick_config () in
  let listener = Thread.create (fun () -> Server.listen_unix server ~path) () in
  Fun.protect
    ~finally:(fun () ->
      Server.begin_drain server;
      Server.await server;
      Thread.join listener;
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let rec ping n =
        if n = 0 then Alcotest.fail "stale socket never replaced"
        else
          match Client.connect ~path () with
          | exception Unix.Unix_error _ ->
              Thread.delay 0.01;
              ping (n - 1)
          | t -> (
              Fun.protect ~finally:(fun () -> Client.close t) @@ fun () ->
              Client.send_ping t ~id:"stale";
              match Client.read_reply t with
              | Ok (Protocol.Ok_pong { id }) ->
                  check_string "pong over replaced socket" "stale" id
              | _ -> Alcotest.fail "no pong over replaced socket")
      in
      ping 500)

(* --------------------- fault tolerance e2e ------------------------- *)

(* Injected serve.write faults drop replies and abort connections; a
   retrying session must reconnect and eventually get every answer.
   The decision stream is a pure function of the seed and the client is
   single and synchronous, so the run is reproducible. *)
let test_e2e_retry_under_write_faults () =
  let sbs = Lazy.force corpus in
  (match Sb_fault.Fault.parse "serve.write:epipe@0.4,seed=11" with
  | Ok p -> Sb_fault.Fault.install p
  | Error e -> Alcotest.failf "bad plan: %s" e);
  Fun.protect ~finally:Sb_fault.Fault.clear (fun () ->
      with_server quick_config (fun server path ->
          let s =
            Client.session
              ~policy:
                { Client.Retry.attempts = 10; base_s = 0.002; cap_s = 0.02 }
              ~read_timeout_s:5. ~seed:1 ~path ()
          in
          Fun.protect
            ~finally:(fun () -> Client.session_close s)
            (fun () ->
              List.iteri
                (fun i sb ->
                  let id = Printf.sprintf "f%d" i in
                  match
                    Client.session_schedule s ~id ~heuristic:"critical-path" sb
                  with
                  | Ok (Protocol.Ok_schedule { id = rid; _ }) ->
                      check_string "reply id" id rid
                  | Ok r ->
                      Alcotest.failf "unexpected reply: %s"
                        (Protocol.render_reply r)
                  | Error msg -> Alcotest.failf "retries exhausted: %s" msg)
                sbs;
              check_bool "faults actually fired" true
                (List.mem_assoc "fault.serve.write" (Server.stats_fields server));
              check_bool "client retried" true (Client.session_retries s > 0))))

(* An idle connection is evicted by the read timeout; a connection
   whose reply is merely slow keeps it. *)
let test_e2e_idle_timeout () =
  let config = { quick_config with Server.idle_timeout_s = Some 0.15 } in
  with_server config (fun server path ->
      let c = Client.connect ~read_timeout_s:5. ~path () in
      Thread.delay 0.5;
      (* The server's reader timed out long ago; this ping is never
         read, and the eviction path closes the connection under us. *)
      (try Client.send_ping c ~id:"late" with Sys_error _ -> ());
      (match Client.read_reply c with
      | Error _ -> ()
      | Ok r ->
          Alcotest.failf "evicted connection answered: %s"
            (Protocol.render_reply r));
      Client.close c;
      let evicted =
        int_of_string (List.assoc "idle_evicted" (Server.stats_fields server))
      in
      check_bool "eviction counted" true (evicted >= 1));
  (* In-flight replies survive the eviction of their connection: the
     dispatcher is slower than the idle timeout, so the reader has
     already been evicted by the time the reply is ready — it must
     still be delivered before the connection is torn down. *)
  let slow =
    {
      quick_config with
      Server.idle_timeout_s = Some 0.15;
      before_batch = Some (fun () -> Thread.delay 0.4);
    }
  in
  with_server slow (fun _server path ->
      let c = Client.connect ~read_timeout_s:5. ~path () in
      let sb = List.hd (Lazy.force corpus) in
      Client.send_schedule c ~id:"slow" ~heuristic:"critical-path" sb;
      (match Client.read_reply c with
      | Ok (Protocol.Ok_schedule { id; _ }) ->
          check_string "in-flight reply delivered" "slow" id
      | Ok r ->
          Alcotest.failf "unexpected reply: %s" (Protocol.render_reply r)
      | Error msg -> Alcotest.failf "in-flight reply lost: %s" msg);
      Client.close c)

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "serve.protocol",
      [
        tc "reply render/parse roundtrip" test_reply_roundtrip;
        tc "error codes" test_error_codes;
        tc "reader frames schedule+ping" test_reader_frames_schedule;
        tc "reader skims bad-header bodies" test_reader_rejects_bad_header;
        tc "reader rejects bad bodies" test_reader_rejects_bad_body;
        tc "reader rejects unknown directives"
          test_reader_rejects_unknown_directive;
        tc "reader tracks in-flight bodies" test_reader_in_flight;
        tc "reader caps body size" test_reader_body_cap;
      ] );
    ( "serve.queue",
      [
        tc "shed at capacity, FIFO batches" test_queue_shed_and_order;
        tc "close drains then stops" test_queue_close;
        tc "blocked pop wakes on push" test_queue_blocking_pop;
        tc "invalid capacity" test_queue_invalid;
      ] );
    ( "serve.stats",
      [
        tc "counters and percentiles" test_stats_counters;
        tc "empty histogram" test_stats_empty;
        tc "concurrent increments lose nothing" test_stats_concurrent_counters;
      ] );
    ( "serve.fuzz",
      List.map QCheck_alcotest.to_alcotest
        [ prop_reader_never_desyncs; prop_parse_reply_total ] );
    ( "serve.e2e",
      [
        tc "concurrent clients match direct runs" test_e2e_matches_direct;
        tc "machine override, ping, stats" test_e2e_machine_override_and_ping;
        tc "expired deadline degrades to CP" test_e2e_deadline_degrades;
        tc "optimal: tight budget yields incumbent+gap"
          test_e2e_optimal_tight_budget;
        tc "optimal: generous budget matches direct run"
          test_e2e_optimal_generous_matches_direct;
        tc "full queue sheds busy" test_e2e_busy_shed;
        tc "drain serves accepted, refuses new" test_e2e_drain;
        tc "malformed request is isolated" test_e2e_malformed;
        tc "half-close keeps replies" test_e2e_half_close;
        tc "socket perms, takeover, stale file" test_socket_takeover;
      ] );
    ( "serve.faults",
      [
        tc "retry wins over injected write faults"
          test_e2e_retry_under_write_faults;
        tc "idle eviction spares in-flight replies" test_e2e_idle_timeout;
      ] );
  ]
