let () =
  Alcotest.run "balance-scheduling"
    (Test_ir.suites @ Test_machine.suites @ Test_bounds.suites
   @ Test_sched.suites @ Test_workload.suites @ Test_eval.suites
   @ Test_dyn.suites @ Test_pipeline.suites @ Test_misc.suites @ Test_cfg.suites @ Test_sim.suites @ Test_kwise.suites @ Test_props.suites
   @ Test_parallel.suites @ Test_incremental.suites @ Test_optimal.suites
   @ Test_serve.suites @ Test_shard.suites
   @ Test_fault.suites @ Test_obs.suites @ Test_layout.suites
   @ Test_resilience.suites
   @ Test_telemetry.suites)
