(* Property-based tests (qcheck, registered as alcotest cases).

   The heavyweight invariants of the system:
   - set algebra of Bitset against a list model;
   - structural soundness of random dependence graphs;
   - serde roundtrips on generated superblocks;
   - every bound is below every schedule, for arbitrary seeds and
     machines;
   - Theorem 2 (pairwise) validity against concrete schedules. *)

open Sb_ir

let count n = n

(* -------------------------- generators ---------------------------- *)

let seed_gen = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100_000)

let config_of_seed seed =
  List.nth Sb_machine.Config.all (seed mod List.length Sb_machine.Config.all)

let superblock_of_seed ?(max_ops = 50) seed =
  let profile =
    {
      Sb_workload.Generator.default_profile with
      name = "qc";
      max_ops;
      blocks_mean = 2.0;
    }
  in
  Sb_workload.Generator.generate
    (Sb_workload.Rng.create (Int64.of_int (seed * 2654435761 + 17)))
    profile ~index:seed

let small_int_list =
  QCheck.list_of_size QCheck.Gen.(int_bound 30) (QCheck.int_bound 199)

(* ---------------------------- bitsets ----------------------------- *)

let prop_bitset_model =
  QCheck.Test.make ~name:"bitset agrees with a list model" ~count:(count 200)
    (QCheck.pair small_int_list small_int_list)
    (fun (xs, ys) ->
      let a = Bitset.of_list 200 xs and b = Bitset.of_list 200 ys in
      let xs' = List.sort_uniq compare xs and ys' = List.sort_uniq compare ys in
      let model_inter = List.filter (fun x -> List.mem x ys') xs' in
      let model_diff = List.filter (fun x -> not (List.mem x ys')) xs' in
      let model_union = List.sort_uniq compare (xs' @ ys') in
      let u = Bitset.copy a in
      Bitset.union_into u b;
      Bitset.elements (Bitset.inter a b) = model_inter
      && Bitset.elements (Bitset.diff a b) = model_diff
      && Bitset.elements u = model_union
      && Bitset.cardinal a = List.length xs'
      && Bitset.subset (Bitset.inter a b) a
      && Bitset.is_empty (Bitset.diff a a))

(* -------------------------- dep graphs ---------------------------- *)

let prop_graph_topo_and_closure =
  QCheck.Test.make ~name:"random DAG: topo order and closure agree"
    ~count:(count 100) seed_gen (fun seed ->
      let rng = Sb_workload.Rng.create (Int64.of_int (seed + 1)) in
      let n = 2 + Sb_workload.Rng.int rng 40 in
      let edges = ref [] in
      for dst = 1 to n - 1 do
        for _ = 1 to Sb_workload.Rng.int rng 3 do
          let src = Sb_workload.Rng.int rng dst in
          edges :=
            { Dep_graph.src; dst; latency = Sb_workload.Rng.int rng 3 }
            :: !edges
        done
      done;
      let g = Dep_graph.make ~n !edges in
      let order = Dep_graph.topo_order g in
      let pos = Array.make n 0 in
      Array.iteri (fun i v -> pos.(v) <- i) order;
      List.for_all
        (fun { Dep_graph.src; dst; _ } ->
          pos.(src) < pos.(dst)
          && Dep_graph.is_pred g src dst
          && Bitset.mem (Dep_graph.transitive_succs g src) dst)
        (Dep_graph.edges g))

let prop_longest_path_triangle =
  QCheck.Test.make ~name:"longest paths satisfy the edge inequality"
    ~count:(count 100) seed_gen (fun seed ->
      let sb = superblock_of_seed seed in
      let g = sb.Superblock.graph in
      let early = Dep_graph.longest_from_sources g in
      List.for_all
        (fun { Dep_graph.src; dst; latency } ->
          early.(dst) >= early.(src) + latency)
        (Dep_graph.edges g))

(* ----------------------------- serde ------------------------------ *)

let prop_serde_roundtrip =
  QCheck.Test.make ~name:"serde roundtrips generated superblocks"
    ~count:(count 60) seed_gen (fun seed ->
      let sb = superblock_of_seed seed in
      match Serde.parse_string (Serde.superblock_to_string sb) with
      | Error _ -> false
      | Ok [ sb' ] ->
          Superblock.n_ops sb = Superblock.n_ops sb'
          && Superblock.n_branches sb = Superblock.n_branches sb'
          && Dep_graph.n_edges sb.Superblock.graph
             = Dep_graph.n_edges sb'.Superblock.graph
          && Array.for_all2 Operation.equal sb.Superblock.ops
               sb'.Superblock.ops
      | Ok _ -> false)

(* Corpus superblocks carry real branch probabilities and frequencies;
   the list form must round-trip them exactly (%.17g), and files that
   omit the structural edges (the branch control chain, dangling-op
   attachments) must load back to the identical graph because
   [Builder] re-inserts them. *)

let corpus_for_serde =
  lazy
    (Array.of_list
       (Sb_workload.Corpus.program ~count:40 "gcc").Sb_workload.Corpus
         .superblocks)

let edge_key { Dep_graph.src; dst; latency } = (src, dst, latency)

let sb_equal (a : Superblock.t) (b : Superblock.t) =
  a.Superblock.name = b.Superblock.name
  && a.Superblock.freq = b.Superblock.freq
  && Array.length a.Superblock.ops = Array.length b.Superblock.ops
  && Array.for_all2 Operation.equal a.Superblock.ops b.Superblock.ops
  && a.Superblock.branches = b.Superblock.branches
  && a.Superblock.weights = b.Superblock.weights
  && List.sort compare (List.map edge_key (Dep_graph.edges a.Superblock.graph))
     = List.sort compare (List.map edge_key (Dep_graph.edges b.Superblock.graph))

(* The structural edges [Builder] provably regenerates: the control
   chain between consecutive branches (at the branch latency), and
   lat-0 attachments from an op to the first later branch when that
   edge is the op's only way out (removing it makes the op dangling
   again, so the builder re-adds exactly it). *)
let removable_structural_edges (sb : Superblock.t) =
  let branches = sb.Superblock.branches in
  let bl = Superblock.branch_latency sb in
  let chain = ref [] in
  Array.iteri
    (fun k b ->
      if k + 1 < Array.length branches then
        chain := (b, branches.(k + 1), bl) :: !chain)
    branches;
  let edges = Dep_graph.edges sb.Superblock.graph in
  let out_degree = Hashtbl.create 16 in
  List.iter
    (fun { Dep_graph.src; _ } ->
      Hashtbl.replace out_degree src
        (1 + Option.value ~default:0 (Hashtbl.find_opt out_degree src)))
    edges;
  let last = branches.(Array.length branches - 1) in
  let attach_target v =
    (* Where [Builder.build] would re-attach a dangling op [v]. *)
    match Array.to_list branches |> List.find_opt (fun b -> b > v) with
    | Some b -> b
    | None -> last
  in
  let dangling =
    List.filter_map
      (fun { Dep_graph.src; dst; latency } ->
        if
          latency = 0
          && (not (Operation.is_branch sb.Superblock.ops.(src)))
          && Hashtbl.find_opt out_degree src = Some 1
          && dst = attach_target src
        then Some (src, dst, 0)
        else None)
      edges
  in
  !chain @ dangling

let strip_edges text omit =
  String.split_on_char '\n' text
  |> List.filter (fun line ->
         match String.split_on_char ' ' line |> List.filter (( <> ) "") with
         | [ "edge"; s; d; lat ] ->
             not
               (try
                  let s = int_of_string s and d = int_of_string d in
                  let l = Scanf.sscanf lat "lat=%d" Fun.id in
                  List.mem (s, d, l) omit
                with _ -> false)
         | _ -> true)
  |> String.concat "\n"

let prop_serde_corpus_roundtrip =
  QCheck.Test.make
    ~name:"serde list form roundtrips corpus superblocks exactly"
    ~count:(count 40) seed_gen (fun seed ->
      let corpus = Lazy.force corpus_for_serde in
      let n = Array.length corpus in
      let start = seed mod n in
      let len = 1 + (seed / 7 mod 4) in
      let slice =
        List.init (min len (n - start)) (fun i -> corpus.(start + i))
      in
      match Serde.parse_string (Serde.superblocks_to_string slice) with
      | Error _ -> false
      | Ok sbs' ->
          List.length sbs' = List.length slice
          && List.for_all2 sb_equal slice sbs')

let prop_serde_omitted_structural_edges =
  QCheck.Test.make
    ~name:"serde reloads files with structural edges omitted"
    ~count:(count 40) seed_gen (fun seed ->
      let corpus = Lazy.force corpus_for_serde in
      let sb = corpus.(seed mod Array.length corpus) in
      let omit = removable_structural_edges sb in
      let text = strip_edges (Serde.superblock_to_string sb) omit in
      match Serde.parse_string text with
      | Error _ -> false
      | Ok [ sb' ] -> sb_equal sb sb'
      | Ok _ -> false)

(* ----------------------------- bounds ----------------------------- *)

let prop_bounds_valid =
  QCheck.Test.make ~name:"every bound is below every schedule"
    ~count:(count 40) seed_gen (fun seed ->
      let sb = superblock_of_seed ~max_ops:35 seed in
      let config = config_of_seed seed in
      let all = Sb_bounds.Superblock_bound.all_bounds config sb in
      let schedules =
        [
          Sb_sched.Dhasy.schedule config sb;
          Sb_sched.Successive_retirement.schedule config sb;
          Sb_sched.Balance.schedule ~precomputed:all config sb;
        ]
      in
      List.for_all
        (fun s ->
          let wct = Sb_sched.Schedule.weighted_completion_time s in
          List.for_all
            (fun b -> b <= wct +. 1e-6)
            ([ all.cp; all.hu; all.rj; all.lc; all.pw; all.tightest ]
            @ match all.tw with Some v -> [ v ] | None -> []))
        schedules)

let prop_bound_ordering =
  QCheck.Test.make ~name:"bound dominance: CP<=RJ, Hu<=tightest, LC<=PW"
    ~count:(count 40) seed_gen (fun seed ->
      let sb = superblock_of_seed ~max_ops:35 seed in
      let config = config_of_seed seed in
      let all = Sb_bounds.Superblock_bound.all_bounds ~with_tw:false config sb in
      all.cp <= all.rj +. 1e-9
      && all.hu <= all.tightest +. 1e-9
      && all.rj <= all.lc +. 1e-9
      && all.lc <= all.pw +. 1e-9)

let prop_all_heuristics_above_bounds =
  QCheck.Test.make
    ~name:"every registered heuristic sits above every lower bound"
    ~count:(count 30) seed_gen (fun seed ->
      let sb = superblock_of_seed ~max_ops:30 seed in
      let config = config_of_seed (seed + 3) in
      let all = Sb_bounds.Superblock_bound.all_bounds config sb in
      let bounds =
        [ all.cp; all.hu; all.rj; all.lc; all.pw; all.tightest ]
        @ match all.tw with Some v -> [ v ] | None -> []
      in
      List.for_all
        (fun (h : Sb_sched.Registry.heuristic) ->
          let wct =
            Sb_sched.Schedule.weighted_completion_time (h.run config sb)
          in
          List.for_all (fun b -> b <= wct +. 1e-6) bounds)
        Sb_sched.Registry.all)

let prop_optimal_below_heuristics =
  QCheck.Test.make
    ~name:"Optimal is below every heuristic (and above the bounds)"
    ~count:(count 25) seed_gen (fun seed ->
      let sb = superblock_of_seed ~max_ops:14 seed in
      let config = config_of_seed (seed + 7) in
      let r = Sb_sched.Optimal.schedule config sb in
      if not r.Sb_sched.Optimal.proved_optimal then
        QCheck.assume_fail () (* too big for the budget: skip *)
      else
        let owct = r.Sb_sched.Optimal.wct in
        let all = Sb_bounds.Superblock_bound.all_bounds config sb in
        all.tightest <= owct +. 1e-6
        && r.Sb_sched.Optimal.lower_bound >= owct -. 1e-6
        && List.for_all
             (fun (h : Sb_sched.Registry.heuristic) ->
               let hwct =
                 Sb_sched.Schedule.weighted_completion_time (h.run config sb)
               in
               owct <= hwct +. 1e-6
               && r.Sb_sched.Optimal.lower_bound <= hwct +. 1e-6)
             Sb_sched.Registry.all)

(* Random force-invalidation mid-run must be invisible: the cache's
   refresh after dropped slots still matches a from-scratch [analyze]
   at every event of a replayed Balance schedule. *)
let prop_invalidation_conservative =
  QCheck.Test.make
    ~name:"random cache invalidation never changes dynamic infos"
    ~count:(count 20) seed_gen (fun seed ->
      let sb = superblock_of_seed ~max_ops:25 seed in
      let config = config_of_seed (seed + 11) in
      let module Core = Sb_sched.Scheduler_core in
      let module Dyn = Sb_sched.Dyn_bounds in
      let reference =
        Sb_sched.Balance.schedule ~incremental:false config sb
      in
      let issue = reference.Sb_sched.Schedule.issue in
      let nb = Superblock.n_branches sb in
      let erc = Sb_bounds.Langevin_cerny.early_rc config sb in
      let analysis =
        Sb_bounds.Analysis.create ~memoize:false config sb ~early_rc:erc
      in
      let late_floors =
        Array.init nb (fun k ->
            Some (Sb_bounds.Analysis.late_floor analysis k))
      in
      let st = Core.create config sb in
      let cache =
        Dyn.Cache.create ~early_floor:erc ~late_floors ~with_erc:true st
      in
      let rng = Random.State.make [| seed; 0xCAFE |] in
      let ok = ref true in
      let erc_repr (e : Dyn.erc) = (e.resource, e.deadline, e.ops, e.empty) in
      let check () =
        if Random.State.int rng 3 = 0 then
          Dyn.Cache.force_invalidate cache
            ~branch_index:(Random.State.int rng nb);
        for k = 0 to nb - 1 do
          if not (Core.is_scheduled st (Superblock.branch_op sb k)) then begin
            let cached =
              match Dyn.Cache.refresh cache ~branch_index:k with
              | Some info -> info
              | None -> raise Exit
            in
            let fresh =
              Dyn.analyze ~early_floor:erc ?late_floor:late_floors.(k)
                ~with_erc:true st ~branch_index:k
            in
            if
              not
                (fresh.early = cached.early
                && fresh.earlies = cached.earlies
                && fresh.late = cached.late
                && fresh.adjust = cached.adjust
                && fresh.need_each = cached.need_each
                && List.map erc_repr fresh.ercs
                   = List.map erc_repr cached.ercs
                && Dyn.need_one fresh = Dyn.need_one cached)
            then ok := false
          end
        done
      in
      let by_cycle = Array.make reference.Sb_sched.Schedule.length [] in
      Array.iteri (fun v c -> by_cycle.(c) <- v :: by_cycle.(c)) issue;
      let pos = Array.make (Superblock.n_ops sb) 0 in
      Array.iteri (fun i v -> pos.(v) <- i)
        (Dep_graph.topo_order sb.Superblock.graph);
      (try
         check ();
         Array.iter
           (fun ops ->
             List.iter
               (fun v ->
                 Core.place st v;
                 check ())
               (List.sort (fun a b -> compare pos.(a) pos.(b)) ops);
             if not (Core.finished st) then begin
               Core.advance st;
               check ()
             end)
           by_cycle
       with Exit -> ok := false);
      !ok)

let prop_pairwise_theorem2 =
  QCheck.Test.make
    ~name:"Theorem 2: pair bounds hold in concrete schedules"
    ~count:(count 30) seed_gen (fun seed ->
      let sb = superblock_of_seed ~max_ops:30 seed in
      let config = config_of_seed seed in
      let erc = Sb_bounds.Langevin_cerny.early_rc config sb in
      let pw = Sb_bounds.Pairwise.compute config sb ~early_rc:erc in
      let check_schedule (s : Sb_sched.Schedule.t) =
        let nb = Superblock.n_branches sb in
        let ok = ref true in
        for i = 0 to nb - 1 do
          for j = i + 1 to nb - 1 do
            let p = Sb_bounds.Pairwise.get pw i j in
            let wi = Superblock.weight sb i and wj = Superblock.weight sb j in
            let ti = s.Sb_sched.Schedule.issue.(Superblock.branch_op sb i) in
            let tj = s.Sb_sched.Schedule.issue.(Superblock.branch_op sb j) in
            if
              (wi *. float_of_int ti) +. (wj *. float_of_int tj)
              < (wi *. float_of_int p.Sb_bounds.Pairwise.x)
                +. (wj *. float_of_int p.Sb_bounds.Pairwise.y)
                -. 1e-9
            then ok := false
          done
        done;
        !ok
      in
      check_schedule (Sb_sched.Successive_retirement.schedule config sb)
      && check_schedule (Sb_sched.Critical_path.schedule config sb)
      && check_schedule (Sb_sched.Help.schedule config sb))

(* --------------------------- relaxations --------------------------- *)

let prop_rj_monotone =
  QCheck.Test.make
    ~name:"RJ tardiness: looser deadlines / wider machines never hurt"
    ~count:(count 50) seed_gen (fun seed ->
      let sb = superblock_of_seed ~max_ops:25 seed in
      let g = sb.Superblock.graph in
      let root = Superblock.branch_op sb (Superblock.n_branches sb - 1) in
      let early = Dep_graph.longest_from_sources g in
      let to_root = Dep_graph.longest_to g root in
      let members =
        Array.of_list
          (root :: Bitset.elements (Dep_graph.transitive_preds g root))
      in
      let late slack v =
        if to_root.(v) = min_int then max_int
        else early.(root) - to_root.(v) + slack
      in
      let cls v = Operation.op_class sb.Superblock.ops.(v) in
      let tardiness config slack =
        Sb_bounds.Rim_jain.max_tardiness config ~members
          ~early:(fun v -> early.(v))
          ~late:(late slack) ~cls
      in
      let d0 = tardiness Sb_machine.Config.gp2 0 in
      let d_loose = tardiness Sb_machine.Config.gp2 2 in
      let d_wide = tardiness Sb_machine.Config.gp4 0 in
      d_loose <= d0 - 2 + 2 && d_loose <= d0 && d_wide <= d0)

let prop_reservation_roundtrip =
  QCheck.Test.make ~name:"reservation issue/undo roundtrips"
    ~count:(count 100)
    (QCheck.list_of_size QCheck.Gen.(int_bound 40)
       (QCheck.pair (QCheck.int_bound 20) (QCheck.int_bound 3)))
    (fun moves ->
      let config = Sb_machine.Config.fs8 in
      let t = Sb_machine.Reservation.create config in
      let classes =
        [| Sb_ir.Opcode.Int_alu; Sb_ir.Opcode.Memory; Sb_ir.Opcode.Float;
           Sb_ir.Opcode.Branch |]
      in
      let done_moves =
        List.filter
          (fun (cycle, ci) ->
            let cls = classes.(ci) in
            if Sb_machine.Reservation.can_issue t ~cycle ~cls then begin
              Sb_machine.Reservation.issue t ~cycle ~cls;
              true
            end
            else false)
          moves
      in
      List.iter
        (fun (cycle, ci) ->
          Sb_machine.Reservation.undo_issue t ~cycle ~cls:classes.(ci))
        done_moves;
      List.for_all
        (fun r ->
          Sb_machine.Reservation.first_free t ~from:0 ~r = 0)
        [ 0; 1; 2; 3 ])

let prop_pipeline_preserves_exits =
  QCheck.Test.make ~name:"pipeline expansion preserves exits and weights"
    ~count:(count 40) seed_gen (fun seed ->
      let sb = superblock_of_seed ~max_ops:30 seed in
      let sb', map =
        Pipeline.expand ~occupancy:Pipeline.classic_occupancy sb
      in
      Superblock.n_branches sb' = Superblock.n_branches sb
      && Array.length map = Superblock.n_ops sb'
      && Array.for_all2 ( = ) sb'.Superblock.weights sb.Superblock.weights)

(* --------------------------- schedules ---------------------------- *)

let prop_schedules_valid =
  QCheck.Test.make ~name:"all heuristics produce validated schedules"
    ~count:(count 25) seed_gen (fun seed ->
      let sb = superblock_of_seed ~max_ops:30 seed in
      let config = config_of_seed (seed + 1) in
      List.for_all
        (fun (h : Sb_sched.Registry.heuristic) ->
          (* Schedule.make raises if dependences or resources are
             violated. *)
          let s = h.run config sb in
          Array.for_all (fun t -> t >= 0) s.Sb_sched.Schedule.issue)
        Sb_sched.Registry.primaries)

let prop_branch_order_preserved =
  QCheck.Test.make ~name:"branches issue in program order" ~count:(count 25)
    seed_gen (fun seed ->
      let sb = superblock_of_seed ~max_ops:30 seed in
      let config = config_of_seed seed in
      let s = Sb_sched.Balance.schedule config sb in
      let ok = ref true in
      for k = 0 to Superblock.n_branches sb - 2 do
        if
          s.Sb_sched.Schedule.issue.(Superblock.branch_op sb k)
          >= s.Sb_sched.Schedule.issue.(Superblock.branch_op sb (k + 1))
        then ok := false
      done;
      !ok)

let prop_generated_weights =
  QCheck.Test.make ~name:"generated exit weights form a distribution"
    ~count:(count 80) seed_gen (fun seed ->
      let sb = superblock_of_seed seed in
      let total = Superblock.total_weight sb in
      total > 0.999 && total <= 1. +. 1e-6
      && Array.for_all (fun w -> w >= 0.) sb.Superblock.weights)

let suites =
  [
    ( "props",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_bitset_model;
          prop_graph_topo_and_closure;
          prop_longest_path_triangle;
          prop_serde_roundtrip;
          prop_serde_corpus_roundtrip;
          prop_serde_omitted_structural_edges;
          prop_bounds_valid;
          prop_bound_ordering;
          prop_all_heuristics_above_bounds;
          prop_optimal_below_heuristics;
          prop_invalidation_conservative;
          prop_pairwise_theorem2;
          prop_rj_monotone;
          prop_reservation_roundtrip;
          prop_pipeline_preserves_exits;
          prop_schedules_valid;
          prop_branch_order_preserved;
          prop_generated_weights;
        ] );
  ]
