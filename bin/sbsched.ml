(* sbsched: command-line front end.

   Subcommands:
     schedule     schedule superblocks from a file (or generated) and print
                  the schedules
     bounds       print every lower bound for each superblock
     corpus       generate the synthetic corpus (stats or dump to a file)
     experiments  regenerate the paper's tables and figures
     serve        run the concurrent scheduling service (socket or stdio)
     loadgen      replay superblocks against a running server *)

open Cmdliner

(* Shared --jobs handling: 0 resolves to one domain per core, negative
   is rejected — the single copy of the validation every parallel
   subcommand uses. *)
let resolve_jobs jobs =
  if jobs < 0 then begin
    Printf.eprintf "error: --jobs must be >= 0\n";
    exit 1
  end
  else if jobs = 0 then Sb_eval.Parpool.default_jobs ()
  else jobs

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Fan the per-superblock work out over N domains (1 = \
           sequential, 0 = one per core).  Output order is unchanged.")

(* Shared --trace handling: enable the span tracer for the command's
   lifetime and export Chrome trace_event JSON at the end, even when
   the body raises or exits through cmdliner. *)
let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record scheduler/runtime spans while the command runs and \
           write them to FILE as Chrome trace_event JSON (open in \
           Perfetto or chrome://tracing; one lane per domain).  See \
           docs/OBSERVABILITY.md.")

let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path ->
      Sb_obs.Obs.Trace.start ();
      Fun.protect
        ~finally:(fun () ->
          Sb_obs.Obs.Trace.stop ();
          Sb_obs.Obs.Trace.write_file path;
          Printf.eprintf "sbsched: wrote %s (%d events, %d dropped)\n%!" path
            (Sb_obs.Obs.Trace.emitted ())
            (Sb_obs.Obs.Trace.dropped ()))
        f

let machine_conv =
  let parse s =
    match Sb_machine.Config.by_name s with
    | Some c -> Ok c
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown machine %S (try GP1 GP2 GP4 FS4 FS6 FS8)" s))
  in
  let print ppf (c : Sb_machine.Config.t) =
    Format.pp_print_string ppf c.Sb_machine.Config.name
  in
  Arg.conv (parse, print)

let machine_arg =
  Arg.(
    value
    & opt machine_conv Sb_machine.Config.fs4
    & info [ "m"; "machine" ] ~docv:"MACHINE"
        ~doc:"Machine configuration: GP1, GP2, GP4, FS4, FS6 or FS8.")

let load_superblocks file generate count =
  match (file, generate) with
  | Some path, _ -> begin
      match Sb_ir.Serde.load_file path with
      | Ok sbs -> sbs
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 1
    end
  | None, Some program -> begin
      try (Sb_workload.Corpus.program ~count program).superblocks
      with Invalid_argument msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
    end
  | None, None ->
      Printf.eprintf "error: give a FILE or --generate PROGRAM\n";
      exit 1

let file_arg =
  Arg.(
    value
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Superblock file (see Sb_ir.Serde format).")

let generate_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "g"; "generate" ] ~docv:"PROGRAM"
        ~doc:"Generate superblocks from a synthetic program profile (e.g. gcc).")

let count_arg =
  Arg.(
    value & opt int 5
    & info [ "n"; "count" ] ~docv:"N" ~doc:"Superblocks to generate.")

let blocking_arg =
  Arg.(
    value & flag
    & info [ "blocking" ]
        ~doc:
          "Model a partially pipelined machine (blocking fdiv/fmul) by \
           expanding operations with Rim & Jain stage chains.")

let maybe_expand blocking sbs =
  if not blocking then sbs
  else
    List.map
      (fun sb ->
        fst (Sb_ir.Pipeline.expand ~occupancy:Sb_ir.Pipeline.classic_occupancy sb))
      sbs

(* ------------------------------ faults ------------------------------ *)

let fault_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault" ] ~docv:"PLAN"
        ~doc:
          "Install a deterministic fault-injection plan, e.g. \
           'parpool.worker:die@0.01,serve.write:epipe@0.05,eval.item:5ms@0.02,seed=7' \
           (see docs/ROBUSTNESS.md).  Overrides \\$SBSCHED_FAULT.")

(* --fault wins; otherwise $SBSCHED_FAULT applies, so chaos smokes can
   inject into a server spawned by a script without touching its
   argv. *)
let install_fault_plan flag =
  match flag with
  | Some plan -> (
      match Sb_fault.Fault.parse plan with
      | Ok p -> Sb_fault.Fault.install p
      | Error e ->
          Printf.eprintf "error: --fault: %s\n" e;
          exit 1)
  | None -> (
      match Sb_fault.Fault.install_from_env () with
      | Ok () -> ()
      | Error e ->
          Printf.eprintf "error: %s\n" e;
          exit 1)

(* ----------------------------- schedule ---------------------------- *)

let schedule_cmd =
  let heuristic_arg =
    Arg.(
      value & opt string "balance"
      & info [ "H"; "heuristic" ] ~docv:"NAME"
          ~doc:"One of: sr, cp, gstar, dhasy, help, balance, best, optimal.")
  in
  let optimal_budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "optimal-budget-ms" ] ~docv:"MS"
          ~doc:
            "Wall-clock budget per superblock for --heuristic optimal \
             (default 50 ms).  The anytime search returns the best \
             incumbent found plus its optimality gap when the budget \
             runs out.")
  in
  let optimal_jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "optimal-jobs" ] ~docv:"N"
          ~doc:
            "Domains the branch-and-bound fans each superblock's subtree \
             exploration over (--heuristic optimal only; independent of \
             --jobs, which parallelizes across superblocks).")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "After the run, write every registered metric to FILE in \
             Prometheus text exposition format (includes the \
             sbsched_optimal_* search counters).")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print full schedules.")
  in
  let dot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE"
          ~doc:
            "Write the first superblock's dependence graph (with issue \
             cycles) as Graphviz DOT to FILE.")
  in
  let explain_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "explain" ] ~docv:"FILE"
          ~doc:
            "Write the Balance decision log to FILE as JSONL: one record \
             per scheduling decision with the dynamic Early bounds seen, \
             every pairwise accept/reject with its justifying bound \
             values, and the Hedge tiebreak winner.  Balance only.  See \
             docs/OBSERVABILITY.md for the schema.")
  in
  let run machine heuristic optimal_budget_ms optimal_jobs verbose blocking
      jobs dot trace metrics fault explain file generate count =
    install_fault_plan fault;
    match Sb_sched.Registry.by_name heuristic with
    | None ->
        Printf.eprintf "error: unknown heuristic %S\n" heuristic;
        exit 1
    | Some h ->
        let jobs = resolve_jobs jobs in
        if optimal_jobs < 1 then begin
          Printf.eprintf "error: --optimal-jobs must be >= 1\n";
          exit 1
        end;
        let sbs = maybe_expand blocking (load_superblocks file generate count) in
        let explain_sink =
          match explain with
          | None -> None
          | Some _ when h.Sb_sched.Registry.name <> "balance" ->
              Printf.eprintf
                "error: --explain only records balance decisions (got \
                 --heuristic %s)\n"
                h.Sb_sched.Registry.name;
              exit 1
          | Some path ->
              let oc = open_out path in
              let lock = Mutex.create () in
              at_exit (fun () -> close_out_noerr oc);
              (* One callback per superblock, serializing whole lines
                 under a lock: schedule runs fan out over domains, and a
                 JSONL file must never interleave two records. *)
              Some
                (fun (sb : Sb_ir.Superblock.t) step ->
                  let line =
                    Sb_obs.Json.to_string
                      (Sb_sched.Explain.step_to_json
                         ~sb:sb.Sb_ir.Superblock.name
                         ~machine:machine.Sb_machine.Config.name step)
                  in
                  Mutex.lock lock;
                  output_string oc line;
                  output_char oc '\n';
                  Mutex.unlock lock)
        in
        let run_sb sb =
          match explain_sink with
          | Some log -> Sb_sched.Balance.schedule ~explain:(log sb) machine sb
          | None -> h.Sb_sched.Registry.run machine sb
        in
        with_trace trace @@ fun () ->
        (if h.Sb_sched.Registry.name = "optimal" then
           (* The B&B fans out its own domains (--optimal-jobs), so the
              per-superblock loop stays sequential here: nesting it in
              the Parpool would multiply the domain count. *)
           List.iter
             (fun (sb : Sb_ir.Superblock.t) ->
               let r =
                 Sb_sched.Optimal.schedule ~mode:`Anytime ~jobs:optimal_jobs
                   ~budget_ms:(Option.value optimal_budget_ms ~default:50)
                   machine sb
               in
               Printf.printf
                 "%-24s %s  wct=%.3f  bound=%.3f  gap=%.3f  proved=%b  \
                  nodes=%d  steals=%d%s\n"
                 sb.Sb_ir.Superblock.name machine.Sb_machine.Config.name
                 r.Sb_sched.Optimal.wct r.Sb_sched.Optimal.lower_bound
                 r.Sb_sched.Optimal.gap r.Sb_sched.Optimal.proved_optimal
                 r.Sb_sched.Optimal.nodes r.Sb_sched.Optimal.steals
                 (if verbose then
                    Format.asprintf "@.%a" Sb_sched.Schedule.pp
                      r.Sb_sched.Optimal.schedule
                  else ""))
             sbs
         else
           (* Render in parallel, print in corpus order. *)
           Sb_eval.Parpool.parallel_map ~jobs
             (fun sb ->
               let s = run_sb sb in
               let bound = Sb_bounds.Superblock_bound.tightest machine sb in
               let wct = Sb_sched.Schedule.weighted_completion_time s in
               Printf.sprintf "%-24s %s  wct=%.3f  bound=%.3f%s%s"
                 sb.Sb_ir.Superblock.name
                 machine.Sb_machine.Config.name wct bound
                 (if wct <= bound +. 1e-6 then "  (optimal)" else "")
                 (if verbose then
                    Format.asprintf "@.%a" Sb_sched.Schedule.pp s
                  else ""))
             sbs
           |> List.iter print_endline);
        (match (dot, sbs) with
        | Some path, sb :: _ ->
            let s = h.Sb_sched.Registry.run machine sb in
            Sb_ir.Dot.save path
              (Sb_ir.Dot.superblock ~issue:s.Sb_sched.Schedule.issue sb);
            Printf.printf "wrote %s\n" path
        | _ -> ());
        (match metrics with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            output_string oc (Sb_obs.Obs.Metrics.prometheus ());
            close_out oc;
            Printf.eprintf "sbsched: wrote %s\n%!" path)
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Schedule superblocks and report WCT vs bound")
    Term.(
      const run $ machine_arg $ heuristic_arg $ optimal_budget_arg
      $ optimal_jobs_arg $ verbose_arg $ blocking_arg $ jobs_arg $ dot_arg
      $ trace_arg $ metrics_arg $ fault_arg $ explain_arg $ file_arg
      $ generate_arg $ count_arg)

(* ------------------------------ bounds ----------------------------- *)

let bounds_cmd =
  let run machine blocking file generate count =
    let sbs = maybe_expand blocking (load_superblocks file generate count) in
    Printf.printf "%-24s %8s %8s %8s %8s %8s %8s %9s\n" "superblock" "CP" "Hu"
      "RJ" "LC" "PW" "TW" "tightest";
    List.iter
      (fun sb ->
        let b = Sb_bounds.Superblock_bound.all_bounds machine sb in
        Printf.printf "%-24s %8.3f %8.3f %8.3f %8.3f %8.3f %8s %9.3f\n"
          sb.Sb_ir.Superblock.name b.cp b.hu b.rj b.lc b.pw
          (match b.tw with Some v -> Printf.sprintf "%.3f" v | None -> "-")
          b.tightest)
      sbs
  in
  Cmd.v
    (Cmd.info "bounds" ~doc:"Print every superblock lower bound")
    Term.(
      const run $ machine_arg $ blocking_arg $ file_arg $ generate_arg
      $ count_arg)

(* ------------------------------ corpus ----------------------------- *)

let corpus_cmd =
  let scale_arg =
    Arg.(
      value & opt float 0.05
      & info [ "s"; "scale" ] ~docv:"S"
          ~doc:"Corpus scale; 1.0 reproduces the paper's 6615 superblocks.")
  in
  let dump_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "dump" ] ~docv:"FILE" ~doc:"Write the corpus to FILE.")
  in
  let run scale dump =
    let corpus = Sb_workload.Corpus.generate ~scale () in
    print_string (Sb_workload.Corpus.stats corpus);
    match dump with
    | Some path ->
        Sb_ir.Serde.save_file path (Sb_workload.Corpus.all_superblocks corpus);
        Printf.printf "wrote %s\n" path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "corpus" ~doc:"Generate the synthetic SPECint95-like corpus")
    Term.(const run $ scale_arg $ dump_arg)

(* ----------------------------- simulate ----------------------------- *)

let simulate_cmd =
  let heuristic_arg =
    Arg.(
      value & opt string "balance"
      & info [ "H"; "heuristic" ] ~docv:"NAME"
          ~doc:"Heuristic whose schedule is executed.")
  in
  let runs_arg =
    Arg.(
      value & opt int 10_000
      & info [ "r"; "runs" ] ~docv:"N" ~doc:"Monte-Carlo executions.")
  in
  let seed_arg =
    Arg.(
      value & opt int 51966
      & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.")
  in
  let run machine heuristic runs seed jobs file generate count =
    match Sb_sched.Registry.by_name heuristic with
    | None ->
        Printf.eprintf "error: unknown heuristic %S\n" heuristic;
        exit 1
    | Some h ->
        let jobs = resolve_jobs jobs in
        let sbs = load_superblocks file generate count in
        Sb_eval.Parpool.parallel_map ~jobs
          (fun sb ->
            let s = h.Sb_sched.Registry.run machine sb in
            let wct = Sb_sched.Schedule.weighted_completion_time s in
            let executions =
              Sb_sim.Simulator.sample ~runs ~seed:(Int64.of_int seed) s
            in
            let stats = Sb_sim.Simulator.stats_of s executions in
            Printf.sprintf
              "%-24s analytic=%.3f simulated=%.3f wasted=%.1f ops/run exits=[%s]"
              sb.Sb_ir.Superblock.name wct stats.Sb_sim.Simulator.mean_cycles
              stats.Sb_sim.Simulator.mean_wasted
              (String.concat ","
                 (Array.to_list
                    (Array.map
                       (fun c ->
                         Printf.sprintf "%.1f%%"
                           (100. *. float_of_int c /. float_of_int runs))
                       stats.Sb_sim.Simulator.exit_counts))))
          sbs
        |> List.iter print_endline
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Monte-Carlo execute schedules and compare with the analytic WCT")
    Term.(
      const run $ machine_arg $ heuristic_arg $ runs_arg $ seed_arg $ jobs_arg
      $ file_arg $ generate_arg $ count_arg)

(* ------------------------------- form ------------------------------- *)

let form_cmd =
  let cfg_file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"CFG" ~doc:"Control-flow graph file (see Sb_cfg.Parse).")
  in
  let dump_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "dump" ] ~docv:"FILE"
          ~doc:"Write the formed superblocks to FILE (Sb_ir.Serde format).")
  in
  let threshold_arg =
    Arg.(
      value & opt float 0.55
      & info [ "t"; "threshold" ] ~docv:"P"
          ~doc:"Minimum edge probability followed by trace growth.")
  in
  let run machine cfg_file dump threshold =
    match Sb_cfg.Parse.load_file cfg_file with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
    | Ok cfg ->
        let traces = Sb_cfg.Trace.form ~threshold cfg in
        List.iter (fun t -> Format.printf "%a@." Sb_cfg.Trace.pp t) traces;
        let sbs = List.map (Sb_cfg.Lower.lower cfg) traces in
        List.iter
          (fun sb ->
            let bound = Sb_bounds.Superblock_bound.tightest machine sb in
            let s = Sb_sched.Balance.schedule machine sb in
            Printf.printf "%-24s freq=%-8.2f wct=%.3f bound=%.3f%s\n"
              sb.Sb_ir.Superblock.name sb.Sb_ir.Superblock.freq
              (Sb_sched.Schedule.weighted_completion_time s)
              bound
              (if
                 Sb_sched.Schedule.weighted_completion_time s
                 <= bound +. 1e-6
               then "  (optimal)"
               else ""))
          sbs;
        match dump with
        | Some path ->
            Sb_ir.Serde.save_file path sbs;
            Printf.printf "wrote %s\n" path
        | None -> ()
  in
  Cmd.v
    (Cmd.info "form"
       ~doc:"Form superblocks from a control-flow graph and schedule them")
    Term.(const run $ machine_arg $ cfg_file_arg $ dump_arg $ threshold_arg)

(* ---------------------------- experiments --------------------------- *)

let experiments_cmd =
  let scale_arg =
    Arg.(
      value & opt float 0.03
      & info [ "s"; "scale" ] ~docv:"S" ~doc:"Corpus scale for the experiments.")
  in
  let full_arg =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:"Paper-scale run (scale 1.0; takes a long time).")
  in
  let id_arg =
    Arg.(
      value & opt string "all"
      & info [ "i"; "id" ] ~docv:"ID"
          ~doc:"table1..table7, figure8, or all.")
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR"
          ~doc:"Also write each selected table as DIR/<id>.csv.")
  in
  let via_cfg_arg =
    Arg.(
      value & flag
      & info [ "via-cfg" ]
          ~doc:
            "Use superblocks formed through the CFG pipeline instead of \
             the direct generator (robustness check).")
  in
  let profile_arg =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "After the run, print every work counter, including the \
             cache.dyn.* / cache.rj.* hit, miss and invalidation counters \
             of the incremental bound machinery.")
  in
  let no_incremental_arg =
    Arg.(
      value & flag
      & info [ "no-incremental" ]
          ~doc:
            "Use the from-scratch bound machinery instead of the \
             memoized/incremental one.  Tables are identical either way; \
             only wall clock (and the cache.* counters under --profile) \
             differ.")
  in
  let checkpoint_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Journal every completed (config, superblock) record to FILE \
             (append + fsync) so a killed run can be continued with \
             --resume.")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Replay the --checkpoint journal's completed records (after \
             validating it against this corpus and configuration) and \
             compute only what is missing.  Tables are byte-identical to \
             an uninterrupted run.")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "After the run, write every registered metric (work counters, \
             fault fire counts, pool respawns, ...) to FILE in Prometheus \
             text exposition format.")
  in
  let run scale full via_cfg jobs profile no_incremental id csv checkpoint
      resume trace metrics fault =
    install_fault_plan fault;
    with_trace trace @@ fun () ->
    let scale = if full then 1.0 else scale in
    let jobs = resolve_jobs jobs in
    if resume && checkpoint = None then begin
      Printf.eprintf "error: --resume needs --checkpoint FILE\n";
      exit 1
    end;
    let corpus_kind =
      if via_cfg then Sb_eval.Experiments.Via_cfg
      else Sb_eval.Experiments.Synthetic
    in
    let setup =
      Sb_eval.Experiments.default_setup ~scale ~corpus_kind
        ~incremental:(not no_incremental) ()
    in
    Sb_bounds.Work.reset ();
    let t0 = Unix.gettimeofday () in
    let p =
      try Sb_eval.Experiments.prepare ~jobs ?checkpoint ~resume setup
      with Failure msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
    in
    let prepare_s = Unix.gettimeofday () -. t0 in
    let all = Sb_eval.Experiments.run_all p in
    let selected =
      if id = "all" then all
      else
        match List.assoc_opt id all with
        | Some t -> [ (id, t) ]
        | None ->
            Printf.eprintf "error: unknown experiment %S\n" id;
            exit 1
    in
    List.iter
      (fun (name, t) ->
        Printf.printf "== %s ==\n%s\n" name (Sb_eval.Table.render t);
        match csv with
        | Some dir ->
            if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
            let path = Filename.concat dir (name ^ ".csv") in
            let oc = open_out path in
            output_string oc (Sb_eval.Table.to_csv t);
            close_out oc
        | None -> ())
      selected;
    if profile then begin
      Printf.printf "== timings ==\n";
      Printf.printf "%-10s %.3f s\n" "prepare" prepare_s;
      List.iter
        (fun (name, s) -> Printf.printf "%-10s %.3f s\n" name s)
        (Sb_eval.Experiments.timings ());
      Printf.printf "== profile ==\n";
      List.iter
        (fun (k, n) -> Printf.printf "%-24s %d\n" k n)
        (Sb_bounds.Work.report ());
      (* Appended after the work counters so existing parsers of the
         section keep working. *)
      Printf.printf "%-24s %d\n" "pool.respawned"
        (Sb_eval.Parpool.total_respawned ());
      Printf.printf "%-24s %d\n" "watchdog.timeouts"
        (Sb_fault.Watchdog.timeouts ())
    end;
    match metrics with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Sb_obs.Obs.Metrics.prometheus ());
        close_out oc;
        Printf.eprintf "sbsched: wrote %s\n%!" path
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate the paper's tables and figures")
    Term.(
      const run $ scale_arg $ full_arg $ via_cfg_arg $ jobs_arg $ profile_arg
      $ no_incremental_arg $ id_arg $ csv_arg $ checkpoint_arg $ resume_arg
      $ trace_arg $ metrics_arg $ fault_arg)

(* ------------------------------- serve ------------------------------ *)

(* Prefer the user-owned runtime dir; in a shared temp dir, suffix the
   uid so users don't collide on (or squat) a predictable name.  The
   server additionally chmods the socket 0600 after bind. *)
let default_socket =
  match Sys.getenv_opt "XDG_RUNTIME_DIR" with
  | Some dir when dir <> "" -> Filename.concat dir "sbsched.sock"
  | _ ->
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "sbsched-%d.sock" (Unix.getuid ()))

let socket_arg =
  Arg.(
    value
    & opt string default_socket
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix domain socket path.")

let tcp_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT"
        ~doc:
          "Listen on TCP HOST:PORT instead of the Unix socket (port 0 \
           binds an ephemeral port, printed on stderr).  There is no \
           filesystem permission gate over TCP — bind to 127.0.0.1 \
           unless the network is trusted.")

let parse_tcp s =
  match Sb_serve.Client.target_of_string s with
  | Sb_serve.Client.Tcp (host, port) -> (host, port)
  | Sb_serve.Client.Unix_path _ ->
      Printf.eprintf "error: --tcp wants HOST:PORT (got %S)\n" s;
      exit 1

let cache_arg =
  Arg.(
    value & opt int 0
    & info [ "cache" ] ~docv:"N"
        ~doc:
          "Keep the N most recently used schedule results in a \
           content-addressed cache (keyed by canonical superblock digest \
           + machine + heuristic + flags); identical requests are \
           answered without recomputation and concurrent identical \
           misses compute once (single-flight).  0 (default) disables \
           caching.")

let cache_journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-journal" ] ~docv:"FILE"
        ~doc:
          "Persist cached results to FILE (append + fsync, \
           fingerprint-validated) and warm the cache from it on start, \
           so a restarted server answers hot keys without recomputation. \
           Needs --cache.")

(* Cache glue: the journaled value is the rendered reply line itself
   (%.17g floats), so warmed entries answer bit-identically to the run
   that computed them. *)
let cache_encode r =
  Sb_serve.Protocol.render_reply
    (Sb_serve.Protocol.Ok_schedule { id = "-"; result = r })

let cache_decode line =
  match Sb_serve.Protocol.parse_reply line with
  | Ok (Sb_serve.Protocol.Ok_schedule { result; _ }) -> Some result
  | _ -> None

let make_cache ~capacity ~journal ~(machine : Sb_machine.Config.t) ~with_tw =
  if capacity = 0 then begin
    if journal <> None then begin
      Printf.eprintf "error: --cache-journal needs --cache N\n";
      exit 1
    end;
    (None, fun () -> ())
  end
  else begin
    let journal =
      Option.map
        (fun path ->
          {
            Sb_shard.Cache.journal_path = path;
            resume = true;
            (* Everything a stored result depends on beyond its key:
               the wire format version and the server's bound config.
               The key already carries machine/heuristic/flags, but the
               default machine is part of what keys mean. *)
            meta =
              [
                ("fmt", "1");
                ("machine", machine.Sb_machine.Config.name);
                ("tw", string_of_bool with_tw);
              ];
            encode = cache_encode;
            decode = cache_decode;
          })
        journal
    in
    let cache =
      try Sb_shard.Cache.create ?journal ~capacity ()
      with Failure msg | Invalid_argument msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
    in
    let hook =
      {
        Sb_serve.Server.cached_compute =
          (fun ~key ~compute ->
            let v, outcome = Sb_shard.Cache.find_or_compute cache ~key ~compute in
            ( v,
              match outcome with
              | Sb_shard.Cache.Hit -> Sb_serve.Server.Cache_hit
              | Sb_shard.Cache.Miss -> Sb_serve.Server.Cache_miss
              | Sb_shard.Cache.Waited -> Sb_serve.Server.Cache_waited ));
      }
    in
    (Some hook, fun () -> Sb_shard.Cache.close cache)
  end

let serve_cmd =
  let stdio_arg =
    Arg.(
      value & flag
      & info [ "stdio" ]
          ~doc:
            "Serve a single connection on stdin/stdout instead of a \
             socket; drains and exits cleanly on EOF (used by tests).")
  in
  let queue_arg =
    Arg.(
      value & opt int 128
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Bounded request queue capacity; beyond it requests are shed \
             with an error code=busy reply.")
  in
  let batch_arg =
    Arg.(
      value & opt int 16
      & info [ "batch" ] ~docv:"N"
          ~doc:"Micro-batch size handed to the domain pool per dispatch.")
  in
  let tw_arg =
    Arg.(
      value & flag
      & info [ "tw" ]
          ~doc:
            "Include the (expensive) Triplewise bound when a request \
             asks for bounds=true.")
  in
  let force_arg =
    Arg.(
      value & flag
      & info [ "force" ]
          ~doc:
            "Take over the socket path even if a live server appears to \
             be listening on it.")
  in
  let idle_timeout_arg =
    Arg.(
      value & opt float 0.
      & info [ "idle-timeout" ] ~docv:"SEC"
          ~doc:
            "Evict socket connections that stay silent this many seconds \
             (in-flight replies are still delivered); 0 disables.")
  in
  let run machine jobs stdio socket tcp force queue_capacity batch_max with_tw
      idle_timeout cache_capacity cache_journal trace fault =
    install_fault_plan fault;
    with_trace trace @@ fun () ->
    let jobs = resolve_jobs jobs in
    let drain_signals = [ Sys.sigint; Sys.sigterm ] in
    let handled_signals = Sys.sigusr1 :: drain_signals in
    (* Server.begin_drain takes the queue lock, so it must never run in
       signal-handler context (a handler firing inside the queue's
       critical section would self-deadlock).  Instead, block the
       signals before any server thread is spawned — threads inherit
       the mask — and service them on a dedicated thread below.
       SIGUSR1 snapshots the trace rings to disk without stopping the
       server (the wire [trace-dump] request is the remote twin). *)
    if not stdio then
      ignore (Thread.sigmask Unix.SIG_BLOCK handled_signals : int list);
    let snapshot_path =
      match trace with
      | Some p -> p
      | None ->
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "sbsched-trace-%d.json" (Unix.getpid ()))
    in
    let cache, close_cache =
      make_cache ~capacity:cache_capacity ~journal:cache_journal ~machine
        ~with_tw
    in
    let config =
      {
        Sb_serve.Server.machine;
        jobs;
        queue_capacity;
        batch_max;
        with_tw;
        before_batch = None;
        idle_timeout_s = (if idle_timeout > 0. then Some idle_timeout else None);
        cache;
      }
    in
    let server =
      try Sb_serve.Server.create ~config ()
      with Invalid_argument msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
    in
    if stdio then begin
      Sb_serve.Server.serve_channels server stdin stdout;
      Sb_serve.Server.begin_drain server;
      Sb_serve.Server.await server;
      close_cache ()
    end
    else begin
      let _ : Thread.t =
        Thread.create
          (fun () ->
            let rec loop drained =
              let s = Thread.wait_signal handled_signals in
              if s = Sys.sigusr1 then begin
                Sb_obs.Obs.Trace.write_file snapshot_path;
                Printf.eprintf "sbserve: wrote trace snapshot %s\n%!"
                  snapshot_path;
                loop drained
              end
              else if not drained then begin
                Sb_serve.Server.begin_drain server;
                (* A second drain signal forces exit instead of waiting
                   for the drain to finish. *)
                loop true
              end
              else begin
                prerr_endline
                  "sbserve: forced shutdown before drain completed";
                exit 130
              end
            in
            loop false)
          ()
      in
      (try
         match tcp with
         | Some hostport ->
             let host, port = parse_tcp hostport in
             Sb_serve.Server.listen_tcp server ~host ~port
               ~on_listen:(fun bound ->
                 Printf.eprintf
                   "sbserve: listening on %s:%d (machine %s, %d domains, \
                    queue %d)\n\
                    %!"
                   host bound machine.Sb_machine.Config.name jobs
                   queue_capacity)
         | None ->
             Printf.eprintf
               "sbserve: listening on %s (machine %s, %d domains, queue %d)\n%!"
               socket machine.Sb_machine.Config.name jobs queue_capacity;
             Sb_serve.Server.listen_unix server ~force ~path:socket
       with
      | Unix.Unix_error (e, _, _) ->
          Printf.eprintf "error: cannot listen on %s: %s\n"
            (match tcp with Some hp -> hp | None -> socket)
            (Unix.error_message e);
          exit 1
      | Failure msg ->
          Printf.eprintf "error: %s (pass --force to take it over)\n" msg;
          exit 1);
      Sb_serve.Server.await server;
      close_cache ();
      Printf.eprintf "sbserve: drained.  Final stats:\n";
      List.iter
        (fun (k, v) -> Printf.eprintf "  %-24s %s\n" k v)
        (Sb_serve.Server.stats_fields server)
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the concurrent scheduling service (see docs/PROTOCOL.md for \
          the wire protocol)")
    Term.(
      const run $ machine_arg $ jobs_arg $ stdio_arg $ socket_arg $ tcp_arg
      $ force_arg $ queue_arg $ batch_arg $ tw_arg $ idle_timeout_arg
      $ cache_arg $ cache_journal_arg $ trace_arg $ fault_arg)

(* ------------------------------- shard ------------------------------ *)

(* The scale-out front door: spawn N cache-enabled worker servers,
   supervise them (respawn on death), and route by superblock content
   so each worker's cache stays hot.  See docs/PROTOCOL.md §Sharding. *)
let shard_cmd =
  let shards_arg =
    Arg.(
      value & opt int 2
      & info [ "shards" ] ~docv:"N" ~doc:"Worker server processes to run.")
  in
  let inflight_arg =
    Arg.(
      value & opt int 64
      & info [ "inflight" ] ~docv:"N"
          ~doc:
            "Per-shard cap on forwarded-and-unanswered requests; beyond \
             it the router sheds with code=busy.")
  in
  let worker_port_base_arg =
    Arg.(
      value & opt int 0
      & info [ "worker-port-base" ] ~docv:"PORT"
          ~doc:
            "Give worker I the TCP port PORT+I on 127.0.0.1.  0 \
             (default) puts workers on private Unix sockets in the temp \
             directory instead — respawned workers rebind the same \
             address either way.")
  in
  let worker_cache_arg =
    Arg.(
      value & opt int 4096
      & info [ "cache" ] ~docv:"N"
          ~doc:"Per-worker schedule cache capacity (0 disables).")
  in
  let journal_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-journal-dir" ] ~docv:"DIR"
          ~doc:
            "Give each worker a cache journal DIR/shard<I>.journal so a \
             respawned worker warms its cache from disk and answers hot \
             keys without recomputation.")
  in
  let run machine jobs shards socket tcp inflight worker_port_base
      worker_cache journal_dir queue_capacity with_tw no_hedge hedge_delay_ms
      retry_budget probe_interval shard_read_timeout trace trace_sample slo
      fault =
    install_fault_plan fault;
    let jobs = resolve_jobs jobs in
    if shards < 1 then begin
      Printf.eprintf "error: --shards must be >= 1\n";
      exit 1
    end;
    if trace_sample < 0. || trace_sample > 1. then begin
      Printf.eprintf "error: --trace-sample must be in [0, 1]\n";
      exit 1
    end;
    let slo =
      match slo with
      | None -> None
      | Some spec -> (
          match Sb_obs.Slo.parse spec with
          | Ok cfg -> Some (Sb_obs.Slo.create cfg)
          | Error e ->
              Printf.eprintf "error: --slo: %s\n" e;
              exit 1)
    in
    (* Tracing is on whenever there is a sink for it: a --trace file to
       merge at exit, or sampling that makes the wire [trace-dump]
       snapshot meaningful.  Workers get their own tracer via --trace
       (their at-exit file is scratch; the fleet file is assembled from
       live [trace-dump] snapshots). *)
    let tracing = trace <> None || trace_sample > 0. in
    if tracing then Sb_obs.Obs.Trace.start ();
    (match journal_dir with
    | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
    | _ -> ());
    let drain_signals = [ Sys.sigint; Sys.sigterm ] in
    ignore (Thread.sigmask Unix.SIG_BLOCK drain_signals : int list);
    let targets =
      Array.init shards (fun i ->
          if worker_port_base > 0 then
            Sb_serve.Client.Tcp ("127.0.0.1", worker_port_base + i)
          else
            Sb_serve.Client.Unix_path
              (Filename.concat
                 (Filename.get_temp_dir_name ())
                 (Printf.sprintf "sbshard-%d-%d.sock" (Unix.getpid ()) i)))
    in
    let spawn slot =
      let common =
        [
          "serve"; "-m"; machine.Sb_machine.Config.name;
          "-j"; string_of_int jobs;
          "--queue"; string_of_int queue_capacity;
          "--cache"; string_of_int worker_cache;
        ]
        @ (if with_tw then [ "--tw" ] else [])
        @ (match journal_dir with
          | Some dir ->
              [
                "--cache-journal";
                Filename.concat dir (Printf.sprintf "shard%d.journal" slot);
              ]
          | None -> [])
        @ (if tracing then
             [
               "--trace";
               Filename.concat
                 (Filename.get_temp_dir_name ())
                 (Printf.sprintf "sbshard-%d-%d.trace.json" (Unix.getpid ())
                    slot);
             ]
           else [])
        @
        match targets.(slot) with
        | Sb_serve.Client.Tcp (h, p) ->
            [ "--tcp"; Printf.sprintf "%s:%d" h p ]
        | Sb_serve.Client.Unix_path p -> [ "--socket"; p; "--force" ]
      in
      Unix.create_process Sys.executable_name
        (Array.of_list ("sbsched" :: common))
        Unix.stdin Unix.stdout Unix.stderr
    in
    let supervisor =
      Sb_shard.Supervise.start ~n:shards ~spawn
        ~on_respawn:(fun ~slot ~pid ->
          Printf.eprintf "sbshard: respawned worker %d (pid %d)\n%!" slot pid)
        ()
    in
    (* Wait for every worker to answer a ping before accepting clients,
       so the first routed requests don't race the workers' binds. *)
    let await_worker i target =
      let deadline = Unix.gettimeofday () +. 10. in
      let rec try_ping () =
        let ok =
          match
            Sb_serve.Client.connect_target ~read_timeout_s:1. target
          with
          | client ->
              let r =
                Sb_serve.Client.send_ping client ~id:"up";
                Sb_serve.Client.read_reply client
              in
              Sb_serve.Client.close client;
              (match r with Ok _ -> true | Error _ -> false)
          | exception (Unix.Unix_error _ | Failure _) -> false
        in
        if ok then ()
        else if Unix.gettimeofday () > deadline then begin
          Printf.eprintf "error: worker %d did not come up on %s\n" i
            (Sb_serve.Client.target_to_string target);
          Sb_shard.Supervise.stop supervisor;
          exit 1
        end
        else begin
          Thread.delay 0.05;
          try_ping ()
        end
      in
      try_ping ()
    in
    Array.iteri await_worker targets;
    let _ : Sb_obs.Obs.Metrics.collector =
      Sb_obs.Obs.Metrics.register_collector (fun () ->
          [
            {
              Sb_obs.Obs.Metrics.family_name = "sbsched_shard_crashloop";
              family_type = `Gauge;
              family_help =
                "1 when the slot's worker is crash-looping (respawns \
                 pinned at the backoff cap)";
              samples =
                List.init shards (fun i ->
                    {
                      Sb_obs.Obs.Metrics.sample_name =
                        "sbsched_shard_crashloop";
                      labels = [ ("slot", string_of_int i) ];
                      value =
                        (if Sb_shard.Supervise.slot_crashlooping supervisor i
                         then 1.
                         else 0.);
                    });
            };
          ])
    in
    let base = Sb_shard.Router.default_config in
    let router =
      Sb_shard.Router.create
        ~config:
          {
            base with
            Sb_shard.Router.shards = targets;
            inflight_limit = inflight;
            read_timeout_s =
              (if shard_read_timeout > 0. then Some shard_read_timeout
               else None);
            health =
              { base.Sb_shard.Router.health with
                probe_interval_s = probe_interval };
            hedge =
              {
                base.Sb_shard.Router.hedge with
                enabled = not no_hedge;
                fixed_ms =
                  (if hedge_delay_ms > 0 then Some hedge_delay_ms else None);
              };
            budget = { base.Sb_shard.Router.budget with earn = retry_budget };
            trace_sample;
            slo;
            extra_stats =
              Some
                (fun () ->
                  [
                    ( "workers.alive",
                      string_of_int (Sb_shard.Supervise.alive supervisor) );
                    ( "workers.respawns",
                      string_of_int (Sb_shard.Supervise.respawns supervisor) );
                    ( "workers.crashlooping",
                      string_of_int
                        (Sb_shard.Supervise.crashlooping supervisor) );
                  ]);
          }
        ()
    in
    let _ : Thread.t =
      Thread.create
        (fun () ->
          ignore (Thread.wait_signal drain_signals : int);
          Sb_shard.Router.begin_drain router;
          ignore (Thread.wait_signal drain_signals : int);
          prerr_endline "sbshard: forced shutdown before drain completed";
          exit 130)
        ()
    in
    (try
       match tcp with
       | Some hostport ->
           let host, port = parse_tcp hostport in
           Sb_shard.Router.listen_tcp router ~host ~port
             ~on_listen:(fun bound ->
               Printf.eprintf "sbshard: routing on %s:%d (%d shards)\n%!" host
                 bound shards)
       | None ->
           Printf.eprintf "sbshard: routing on %s (%d shards)\n%!" socket
             shards;
           Sb_shard.Router.listen_unix router ~path:socket
     with
    | Unix.Unix_error (e, _, _) ->
        Printf.eprintf "error: cannot listen: %s\n" (Unix.error_message e);
        Sb_shard.Supervise.stop supervisor;
        exit 1
    | Failure msg ->
        Printf.eprintf "error: %s\n" msg;
        Sb_shard.Supervise.stop supervisor;
        exit 1);
    (* The fleet trace is assembled over the still-open shard
       connections, so collect before [await] closes them. *)
    (match trace with
    | Some path ->
        Sb_obs.Obs.Trace.stop ();
        let skipped =
          Sb_shard.Trmerge.write_file path
            (Sb_shard.Router.trace_pages router)
        in
        List.iter
          (fun label ->
            Printf.eprintf "sbshard: trace page %s skipped (no dump)\n" label)
          skipped;
        Printf.eprintf "sbshard: wrote %s\n%!" path
    | None -> ());
    Sb_shard.Router.await router;
    Sb_shard.Supervise.stop supervisor;
    Printf.eprintf "sbshard: drained.  Final stats:\n";
    List.iter
      (fun (k, v) -> Printf.eprintf "  %-24s %s\n" k v)
      (Sb_shard.Router.stats_fields router)
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:
         "Run a consistent-hash router over N supervised worker servers \
          (same wire protocol as serve; see docs/PROTOCOL.md §Sharding)")
    Term.(
      const run $ machine_arg $ jobs_arg $ shards_arg $ socket_arg $ tcp_arg
      $ inflight_arg $ worker_port_base_arg $ worker_cache_arg
      $ journal_dir_arg
      $ Arg.(
          value & opt int 128
          & info [ "queue" ] ~docv:"N" ~doc:"Per-worker request queue bound.")
      $ Arg.(
          value & flag
          & info [ "tw" ]
              ~doc:"Workers include the Triplewise bound for bounds=true.")
      $ Arg.(
          value & flag
          & info [ "no-hedge" ]
              ~doc:
                "Disable hedged requests (tail control; see \
                 docs/PROTOCOL.md §Failover).")
      $ Arg.(
          value & opt int 0
          & info [ "hedge-delay-ms" ] ~docv:"MS"
              ~doc:
                "Hedge a slow request after a fixed MS.  0 (default) \
                 adapts to each shard's p95 latency.")
      $ Arg.(
          value & opt float 0.1
          & info [ "retry-budget" ] ~docv:"R"
              ~doc:
                "Retry-budget earn rate: each primary request earns R \
                 tokens, each retry or hedge spends one — extra traffic \
                 is capped near a fraction R of offered load.")
      $ Arg.(
          value & opt float 0.5
          & info [ "probe-interval" ] ~docv:"SEC"
              ~doc:
                "Delay between half-open ping probes to a shard whose \
                 circuit is open.")
      $ Arg.(
          value & opt float 0.
          & info [ "shard-read-timeout" ] ~docv:"SEC"
              ~doc:
                "Per-shard-connection read timeout; a shard that stops \
                 answering fails its parked forwards (which then fail \
                 over) instead of wedging clients.  0 waits forever.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "trace" ] ~docv:"FILE"
              ~doc:
                "At shutdown, write one merged fleet trace to FILE: the \
                 router's spans plus a live trace-dump snapshot from \
                 every worker, on named Perfetto lanes (one per \
                 process).  Implies tracing in the router and workers.")
      $ Arg.(
          value & opt float 0.
          & info [ "trace-sample" ] ~docv:"RATE"
              ~doc:
                "Probability of minting a trace id for a schedule \
                 request that carries none; the worker's queue/sched/\
                 bound spans and the router's route/hedge spans then \
                 share the id.  Client-supplied trace= ids always win.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "slo" ] ~docv:"SPEC"
              ~doc:
                "Track SLO burn rates over 5m/1h windows and export \
                 them as sbsched_slo_* gauges in the metrics page.  \
                 SPEC is comma-separated key:value with keys p99_ms \
                 (latency target) and err_rate (error budget fraction), \
                 e.g. 'p99_ms:250,err_rate:0.01'.")
      $ fault_arg)

(* ------------------------------ loadgen ----------------------------- *)

let loadgen_cmd =
  let conns_arg =
    Arg.(
      value & opt int 4
      & info [ "c"; "conns" ] ~docv:"N" ~doc:"Client connections.")
  in
  let rps_arg =
    Arg.(
      value & opt float 0.
      & info [ "rps" ] ~docv:"R"
          ~doc:"Aggregate target request rate; 0 = closed loop (max).")
  in
  let duration_arg =
    Arg.(
      value & opt float 5.
      & info [ "d"; "duration" ] ~docv:"S" ~doc:"Run length in seconds.")
  in
  let heuristic_arg =
    Arg.(
      value & opt string "balance"
      & info [ "H"; "heuristic" ] ~docv:"NAME" ~doc:"Heuristic to request.")
  in
  let bounds_arg =
    Arg.(
      value & flag
      & info [ "bounds" ] ~doc:"Also request the lower-bound stack.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Attach a deadline to every request.")
  in
  let retries_arg =
    Arg.(
      value & opt int 1
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Attempts per request (>= 1).  Above 1, busy replies and \
             transport failures back off with decorrelated jitter, \
             reconnect and retry; the report counts the retries.")
  in
  let read_timeout_arg =
    Arg.(
      value & opt float 0.
      & info [ "read-timeout" ] ~docv:"SEC"
          ~doc:
            "Give up on a reply after this long (a lost reply then counts \
             as a transport failure, retried under --retries); 0 waits \
             forever.")
  in
  let zipfian_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "zipfian" ] ~docv:"S"
          ~doc:
            "Replace round-robin replay with a Zipfian popularity draw of \
             exponent S (requests pick corpus rank k with probability \
             proportional to 1/(k+1)^S; 0 is uniform).  Hot keys repeat, \
             so a cache-enabled server shows its hit rate in the report.")
  in
  let keys_arg =
    Arg.(
      value & opt int 0
      & info [ "keys" ] ~docv:"K"
          ~doc:
            "With --zipfian: draw from the first K corpus blocks only \
             (clamped to the corpus size; 0 = whole corpus).")
  in
  let run socket conns rps duration heuristic bounds deadline_ms attempts
      read_timeout zipfian keys chaos trace metrics file generate count =
    (* Client-side chaos: the plan drives the [client.*] points
       (connect refusals, dropped connections) inside this loadgen
       process, exercising the retry/reconnect path against a healthy
       server. *)
    (match chaos with
    | None -> ()
    | Some plan -> (
        match Sb_fault.Fault.parse plan with
        | Ok p -> Sb_fault.Fault.install p
        | Error e ->
            Printf.eprintf "error: --chaos: %s\n" e;
            exit 1));
    with_trace trace @@ fun () ->
    let sbs =
      match (file, generate) with
      | None, None ->
          (* A default workload: a gcc-profile corpus slice. *)
          (Sb_workload.Corpus.program ~count "gcc").Sb_workload.Corpus.superblocks
      | _ -> load_superblocks file generate count
    in
    let read_timeout_s = if read_timeout > 0. then Some read_timeout else None in
    let zipf =
      match zipfian with
      | None ->
          if keys > 0 then begin
            Printf.eprintf "error: --keys needs --zipfian S\n";
            exit 1
          end;
          None
      | Some s ->
          Some (s, if keys > 0 then keys else List.length sbs)
    in
    match
      Sb_serve.Client.Loadgen.run ~path:socket ~superblocks:sbs ~conns ~rps
        ~duration_s:duration ~heuristic ~bounds ?deadline_ms ~attempts
        ?read_timeout_s ?zipf ()
    with
    | report ->
        print_string (Sb_serve.Client.Loadgen.report_to_string report);
        (match metrics with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            output_string oc (Sb_serve.Client.Loadgen.metrics_page report);
            close_out oc;
            Printf.eprintf "sbsched: wrote %s\n%!" path)
    | exception Unix.Unix_error (e, _, _) ->
        Printf.eprintf "error: cannot connect to %s: %s\n" socket
          (Unix.error_message e);
        exit 1
    | exception Invalid_argument msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Replay superblocks against a running sbsched serve instance")
    Term.(
      const run $ socket_arg $ conns_arg $ rps_arg $ duration_arg
      $ heuristic_arg $ bounds_arg $ deadline_arg $ retries_arg
      $ read_timeout_arg $ zipfian_arg $ keys_arg
      $ Arg.(
          value
          & opt (some string) None
          & info [ "chaos" ] ~docv:"PLAN"
              ~doc:
                "Install a client-side fault plan, e.g. \
                 'client.connect:raise@0.05,client.conn_drop:raise@0.02,seed=7' \
                 — connects are refused and live connections severed \
                 inside loadgen itself, exercising --retries against a \
                 healthy server (see docs/ROBUSTNESS.md).")
      $ trace_arg
      $ Arg.(
          value
          & opt (some string) None
          & info [ "metrics" ] ~docv:"FILE"
              ~doc:
                "After the run, write the client-observed latency \
                 distributions (overall, cache hit/miss split) and \
                 outcome counters to FILE in Prometheus text exposition \
                 format (sbsched_loadgen_*).")
      $ file_arg $ generate_arg $ count_arg)

(* ----------------------------- trace-lint --------------------------- *)

(* Strict validation of a --trace output file: parses with the strict
   JSON parser (no trailing garbage, no NaNs), checks the trace_event
   structure, and checks that B/E events pair up within every lane —
   what Perfetto needs to render the file without complaint. *)
let trace_lint_cmd =
  let trace_file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"A trace file written by --trace.")
  in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "trace-lint: %s\n" msg;
        exit 1)
      fmt
  in
  let run path =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    match Sb_obs.Json.parse text with
    | Error msg -> fail "%s: %s" path msg
    | Ok json -> (
        match Sb_obs.Json.member "traceEvents" json with
        | None -> fail "%s: no traceEvents array" path
        | Some (Sb_obs.Json.List events) ->
            (* Per-(pid, lane) stacks of open B names; X/i are
               self-contained, M is metadata (no timestamp). *)
            let stacks : (int * int, string list ref) Hashtbl.t =
              Hashtbl.create 8
            in
            let stack key =
              match Hashtbl.find_opt stacks key with
              | Some s -> s
              | None ->
                  let s = ref [] in
                  Hashtbl.add stacks key s;
                  s
            in
            let pids : (int, unit) Hashtbl.t = Hashtbl.create 4 in
            let named_pids : (int, unit) Hashtbl.t = Hashtbl.create 4 in
            List.iteri
              (fun i ev ->
                let str k =
                  match Sb_obs.Json.member k ev with
                  | Some (Sb_obs.Json.String s) -> s
                  | _ -> fail "event %d: missing string field %S" i k
                in
                let num k =
                  match Sb_obs.Json.member k ev with
                  | Some (Sb_obs.Json.Int _ | Sb_obs.Json.Float _) -> ()
                  | _ -> fail "event %d: missing numeric field %S" i k
                in
                let int k =
                  match Sb_obs.Json.member k ev with
                  | Some (Sb_obs.Json.Int n) -> n
                  | _ -> fail "event %d: missing int field %S" i k
                in
                let name = str "name" in
                let pid = int "pid" in
                let tid = int "tid" in
                (* A [trace=<id>] arg links the event to a distributed
                   request; a malformed id would break the linkage the
                   fleet merge exists for. *)
                (match Sb_obs.Json.member "args" ev with
                | Some args -> (
                    match Sb_obs.Json.member "trace" args with
                    | Some (Sb_obs.Json.String t) ->
                        if not (Sb_serve.Protocol.is_hex_id t) then
                          fail "event %d: malformed trace id %S" i t
                    | Some _ -> fail "event %d: trace arg is not a string" i
                    | None -> ())
                | None -> ());
                match str "ph" with
                | "M" ->
                    if name = "process_name" then
                      Hashtbl.replace named_pids pid ()
                | ph -> (
                    Hashtbl.replace pids pid ();
                    num "ts";
                    match ph with
                    | "B" -> (
                        let s = stack (pid, tid) in
                        s := name :: !s)
                    | "E" -> (
                        let s = stack (pid, tid) in
                        match !s with
                        | top :: rest ->
                            if top <> name then
                              fail
                                "event %d: lane %d closes %S but %S is open"
                                i tid name top;
                            s := rest
                        | [] ->
                            fail
                              "event %d: lane %d closes %S with no open span"
                              i tid name)
                    | "X" -> (
                        match Sb_obs.Json.member "dur" ev with
                        | Some (Sb_obs.Json.Int d) ->
                            if d < 0 then
                              fail "event %d: negative dur %d" i d
                        | Some (Sb_obs.Json.Float d) ->
                            if d < 0. then
                              fail "event %d: negative dur %g" i d
                        | _ -> fail "event %d: X event without dur" i)
                    | "i" -> ()
                    | ph -> fail "event %d: unknown phase %S" i ph))
              events;
            Hashtbl.iter
              (fun (_, tid) s ->
                match !s with
                | [] -> ()
                | top :: _ ->
                    fail "lane %d ends with unclosed span %S" tid top)
              stacks;
            (* A multi-process (fleet) trace must name its lanes, or
               Perfetto shows indistinguishable pid numbers. *)
            if Hashtbl.length pids > 1 then
              Hashtbl.iter
                (fun pid () ->
                  if not (Hashtbl.mem named_pids pid) then
                    fail "pid %d has no process_name metadata" pid)
                pids;
            Printf.printf "ok: %d events, %d lanes\n" (List.length events)
              (Hashtbl.length stacks)
        | Some _ -> fail "%s: traceEvents is not an array" path)
  in
  Cmd.v
    (Cmd.info "trace-lint"
       ~doc:"Strictly validate a --trace file (JSON and span balance)")
    Term.(const run $ trace_file_arg)

(* -------------------------------- top ------------------------------- *)

(* A live terminal dashboard over periodic [metrics] scrapes.  All the
   computation (page parsing, counter deltas, histogram-delta
   percentiles, frame rendering) lives in Sb_shard.Top where it is unit
   tested; this command owns only the scrape loop and the screen. *)
let top_cmd =
  let connect_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "connect" ] ~docv:"TARGET"
          ~doc:
            "Server or router to watch: HOST:PORT, or a Unix socket \
             path.  Pointed at a router, the per-shard health table and \
             hedge/failover rates light up; pointed at a single server, \
             they stay dashed.")
  in
  let interval_arg =
    Arg.(
      value & opt float 2.
      & info [ "interval" ] ~docv:"SEC" ~doc:"Seconds between scrapes.")
  in
  let frames_arg =
    Arg.(
      value & opt int 0
      & info [ "frames" ] ~docv:"N"
          ~doc:"Stop after N frames (0 = run until interrupted).")
  in
  let no_clear_arg =
    Arg.(
      value & flag
      & info [ "no-clear" ]
          ~doc:
            "Append frames instead of redrawing in place (for logs and \
             non-ANSI terminals).")
  in
  let run target_str interval frames no_clear =
    if interval <= 0. then begin
      Printf.eprintf "error: --interval must be > 0\n";
      exit 1
    end;
    let target = Sb_serve.Client.target_of_string target_str in
    (* One short-lived connection per scrape: the dashboard must keep
       working across server restarts, and a stale connection would
       turn every frame after a restart into an error. *)
    let scrape () =
      match Sb_serve.Client.connect_target ~read_timeout_s:5. target with
      | exception Unix.Unix_error (e, _, _) ->
          Error (Unix.error_message e)
      | exception Failure msg -> Error msg
      | c ->
          Fun.protect
            ~finally:(fun () -> try Sb_serve.Client.close c with _ -> ())
            (fun () ->
              Sb_serve.Client.send_metrics c ~id:"top";
              match Sb_serve.Client.read_reply c with
              | Ok (Sb_serve.Protocol.Ok_metrics { body; _ }) -> Ok body
              | Ok _ -> Error "unexpected reply to metrics"
              | Error msg -> Error msg
              | exception _ -> Error "read failed")
    in
    let prev = ref None in
    let frame = ref 0 in
    let continue () = frames = 0 || !frame < frames in
    while continue () do
      incr frame;
      (match scrape () with
      | Error e -> Printf.printf "sbsched top: scrape failed: %s\n%!" e
      | Ok page ->
          let ts = Int64.to_float (Sb_obs.Obs.now_ns ()) /. 1e9 in
          let cur = Sb_shard.Top.snapshot ~ts ~page in
          let out =
            Sb_shard.Top.render ?prev:!prev ~target:target_str
              ~frame:!frame cur
          in
          if not no_clear then print_string "\027[2J\027[H";
          print_string out;
          flush stdout;
          prev := Some cur);
      if continue () then Thread.delay interval
    done
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live telemetry dashboard over a running serve or shard \
          instance (rates, latency percentiles by cache outcome, shard \
          health, SLO burn)")
    Term.(const run $ connect_arg $ interval_arg $ frames_arg $ no_clear_arg)

let () =
  let info =
    Cmd.info "sbsched" ~version:"1.0.0"
      ~doc:"Superblock scheduling: Balance heuristic and superblock bounds"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            schedule_cmd; bounds_cmd; simulate_cmd; corpus_cmd; form_cmd;
            experiments_cmd; serve_cmd; shard_cmd; loadgen_cmd; trace_lint_cmd;
            top_cmd;
          ]))
